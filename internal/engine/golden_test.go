package engine

import (
	"sync"
	"testing"

	"optima/internal/core"
	"optima/internal/device"
	"optima/internal/mult"
	"optima/internal/spice"
)

// TestGoldenTrimCachedAcrossConditions pins the trim cache: a condition
// sweep over one configuration pays the 16 trim transients exactly once.
func TestGoldenTrimCachedAcrossConditions(t *testing.T) {
	if testing.Short() {
		t.Skip("golden-simulation bound")
	}
	calib := core.QuickCalibration()
	backend := NewGoldenBackend(calib.Tech, calib.Spice)
	cfg := mult.Config{Tau0: 0.16e-9, VDAC0: 0.3, VDACFS: 1.0}

	first, err := backend.trimFor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.LSBVolt <= 0 || first.Transients != mult.OperandMax+1 {
		t.Fatalf("implausible trim %+v", first)
	}
	second, err := backend.trimFor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if second != first {
		t.Fatalf("cached trim differs: %+v vs %+v", second, first)
	}
	if got := backend.TrimCalibrations(); got != 1 {
		t.Fatalf("%d trim calibrations for one config, want 1", got)
	}

	// A different configuration calibrates its own trim.
	other := mult.Config{Tau0: 0.20e-9, VDAC0: 0.3, VDACFS: 1.0}
	if _, err := backend.trimFor(other); err != nil {
		t.Fatal(err)
	}
	if got := backend.TrimCalibrations(); got != 2 {
		t.Fatalf("%d trim calibrations for two configs, want 2", got)
	}

	// The zero value must work too (lazy map init).
	var zero Golden
	zero.Tech, zero.Spice = calib.Tech, calib.Spice
	if _, err := zero.trimFor(cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := zero.trimFor(cfg); err != nil {
		t.Fatal(err)
	}
	if got := zero.TrimCalibrations(); got != 1 {
		t.Fatalf("zero-value backend ran %d calibrations, want 1", got)
	}
}

var (
	trimBenchOnce sync.Once
	trimBenchTech = device.Generic65()
	trimBenchCfg  = spice.Config{}
)

func trimBenchSetup() {
	trimBenchOnce.Do(func() {
		calib := core.QuickCalibration()
		trimBenchTech = calib.Tech
		trimBenchCfg = calib.Spice
	})
}

// BenchmarkGoldenTrim quantifies the satellite win: cold is the 16-transient
// calibration every golden evaluation used to pay per (config, condition);
// cached is the per-condition cost after the backend memoized the config.
func BenchmarkGoldenTrim(b *testing.B) {
	trimBenchSetup()
	cfg := mult.Config{Tau0: 0.16e-9, VDAC0: 0.3, VDACFS: 1.0}

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := mult.CalibrateGoldenTrim(trimBenchTech, cfg, trimBenchCfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		backend := NewGoldenBackend(trimBenchTech, trimBenchCfg)
		if _, err := backend.trimFor(cfg); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := backend.trimFor(cfg); err != nil {
				b.Fatal(err)
			}
		}
		if got := backend.TrimCalibrations(); got != 1 {
			b.Fatalf("cached path recalibrated: %d calibrations", got)
		}
	})
}
