package events

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// VCDWriter dumps recorded signal traces as a Value Change Dump file —
// the standard waveform interchange format of digital EDA tools, viewable
// in GTKWave and friends. Analog signals are emitted as real variables.
type VCDWriter struct {
	signals []vcdSignal
}

type vcdSignal struct {
	name  string
	trace *Trace
	id    string
}

// AddSignal registers a traced signal for dumping. The signal must have
// tracing enabled (EnableTrace) before the simulation ran.
func (w *VCDWriter) AddSignal(name string, trace *Trace) error {
	if trace == nil {
		return fmt.Errorf("events: signal %q has no trace", name)
	}
	w.signals = append(w.signals, vcdSignal{name: name, trace: trace, id: vcdID(len(w.signals))})
	return nil
}

// vcdID produces the short identifier code for variable n.
func vcdID(n int) string {
	const alphabet = "!\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	if n < len(alphabet) {
		return string(alphabet[n])
	}
	return string(alphabet[n%len(alphabet)]) + vcdID(n/len(alphabet)-1)
}

// Write emits the VCD document. The timescale is 1 fs (the kernel's tick).
func (w *VCDWriter) Write(out io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "$date %s $end\n", time.Time{}.Format("2006-01-02"))
	b.WriteString("$version optima-go events trace $end\n")
	b.WriteString("$timescale 1fs $end\n")
	b.WriteString("$scope module optima $end\n")
	for _, s := range w.signals {
		fmt.Fprintf(&b, "$var real 64 %s %s $end\n", s.id, sanitizeVCDName(s.name))
	}
	b.WriteString("$upscope $end\n$enddefinitions $end\n")

	// Merge all change events in time order.
	type change struct {
		at  Time
		id  string
		val float64
	}
	var changes []change
	for _, s := range w.signals {
		for i := range s.trace.Times {
			changes = append(changes, change{at: s.trace.Times[i], id: s.id, val: s.trace.Values[i]})
		}
	}
	sort.SliceStable(changes, func(i, j int) bool { return changes[i].at < changes[j].at })
	last := Time(-1)
	for _, c := range changes {
		if c.at != last {
			fmt.Fprintf(&b, "#%d\n", int64(c.at))
			last = c.at
		}
		fmt.Fprintf(&b, "r%g %s\n", c.val, c.id)
	}
	_, err := io.WriteString(out, b.String())
	return err
}

// sanitizeVCDName replaces whitespace, which VCD identifiers cannot carry.
func sanitizeVCDName(name string) string {
	return strings.Map(func(r rune) rune {
		if r == ' ' || r == '\t' || r == '\n' {
			return '_'
		}
		return r
	}, name)
}
