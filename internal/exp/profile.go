package exp

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// pprof wiring for experiment sessions. Profiling a run answers the
// questions the engine's aggregate stats cannot: where the evaluation time
// goes (backend model math vs. store I/O vs. scheduling) and what
// allocates on the hot path. The CLIs expose it as -cpuprofile/-memprofile;
// analyze the output with `go tool pprof`.

// StartProfiling begins the session's profiling as configured by the
// CPUProfile/MemProfile fields: CPU sampling starts now and runs until
// Close, which also snapshots the heap for MemProfile. A no-op when neither
// field is set. Call it once, before the experiment work, and always pair
// it with Close — an unstopped CPU profile is truncated and unreadable.
func (c *Context) StartProfiling() error {
	if c.CPUProfile == "" {
		return nil
	}
	f, err := os.Create(c.CPUProfile)
	if err != nil {
		return fmt.Errorf("exp: cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("exp: cpu profile: %w", err)
	}
	c.cpuFile = f
	return nil
}

// stopProfiling finishes both profiles; called from Close.
func (c *Context) stopProfiling() error {
	var first error
	if c.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := c.cpuFile.Close(); err != nil {
			first = fmt.Errorf("exp: cpu profile: %w", err)
		}
		c.cpuFile = nil
	}
	if c.MemProfile != "" {
		f, err := os.Create(c.MemProfile)
		if err != nil {
			if first == nil {
				first = fmt.Errorf("exp: mem profile: %w", err)
			}
			return first
		}
		// Materialize a settled heap: the snapshot should show what the run
		// retains, not what the collector hasn't visited yet.
		runtime.GC()
		err = pprof.WriteHeapProfile(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil && first == nil {
			first = fmt.Errorf("exp: mem profile: %w", err)
		}
		c.MemProfile = "" // written once, even if Close runs twice
	}
	return first
}
