package exp

import (
	"fmt"

	"optima/internal/device"
	"optima/internal/refdata"
	"optima/internal/report"
	"optima/internal/spice"
	"optima/internal/stats"
)

// Fig6Data holds the model-evaluation artifacts (paper Fig. 6): residual
// charts for the supply/temperature/mismatch/energy models and the RMS
// table with paper-vs-measured columns.
type Fig6Data struct {
	SupplyChart   *report.Chart
	TempChart     *report.Chart
	MismatchChart *report.Chart
	EnergyChart   *report.Chart
	RMSTable      *report.Table
}

// Fig6 evaluates the calibrated models against fresh golden simulation at
// off-grid probe points and assembles the Fig. 6 artifacts.
func (c *Context) Fig6() (*Fig6Data, error) {
	out := &Fig6Data{}
	m := c.Model

	// 6a: supply model — model (lines) vs golden (sampled) at VDD corners.
	out.SupplyChart = &report.Chart{Title: "Fig. 6a — Supply voltage model vs golden", XLabel: "t [ns]", YLabel: "V_BL [V]"}
	for _, vdd := range []float64{0.9, 1.0, 1.1} {
		cond := device.PVT{Corner: device.CornerTT, VDD: vdd, TempC: device.NominalTempC}
		ts := stats.Linspace(0.1e-9, 2e-9, 12)
		golden, err := c.goldenCurve(0.9, cond, ts)
		if err != nil {
			return nil, err
		}
		model := make([]float64, len(ts))
		xs := make([]float64, len(ts))
		for i, t := range ts {
			xs[i] = t * 1e9
			model[i] = m.Discharge.VBL(t, 0.9, vdd, cond.TempC)
		}
		if err := out.SupplyChart.AddSeries(fmt.Sprintf("model %0.1fV", vdd), xs, model); err != nil {
			return nil, err
		}
		if err := out.SupplyChart.AddSeries(fmt.Sprintf("golden %0.1fV", vdd), xs, golden); err != nil {
			return nil, err
		}
	}

	// 6b: temperature model residual at hot/cold.
	out.TempChart = &report.Chart{Title: "Fig. 6b — Temperature model residual", XLabel: "t [ns]", YLabel: "model − golden [mV]"}
	for _, tc := range []float64{0, 80} {
		cond := device.PVT{Corner: device.CornerTT, VDD: device.NominalVDD, TempC: tc}
		ts := stats.Linspace(0.1e-9, 2e-9, 12)
		golden, err := c.goldenCurve(0.9, cond, ts)
		if err != nil {
			return nil, err
		}
		xs := make([]float64, len(ts))
		resid := make([]float64, len(ts))
		for i, t := range ts {
			xs[i] = t * 1e9
			resid[i] = (m.Discharge.VBL(t, 0.9, cond.VDD, tc) - golden[i]) * 1e3
		}
		if err := out.TempChart.AddSeries(fmt.Sprintf("T=%.0f °C", tc), xs, resid); err != nil {
			return nil, err
		}
	}

	// 6c: mismatch σ(t) model per word-line voltage.
	out.MismatchChart = &report.Chart{Title: "Fig. 6c — Mismatch σ model", XLabel: "t [ns]", YLabel: "σ [mV]"}
	for _, vwl := range []float64{0.5, 0.75, 1.0} {
		ts := stats.Linspace(0.1e-9, 2e-9, 20)
		xs := make([]float64, len(ts))
		ys := make([]float64, len(ts))
		for i, t := range ts {
			xs[i] = t * 1e9
			ys[i] = m.Discharge.SigmaAt(t, vwl) * 1e3
		}
		if err := out.MismatchChart.AddSeries(fmt.Sprintf("V_WL=%.2f V", vwl), xs, ys); err != nil {
			return nil, err
		}
	}

	// 6d: discharge energy model vs word-line voltage at t = 2 ns.
	out.EnergyChart = &report.Chart{Title: "Fig. 6d — Discharge energy model", XLabel: "V_WL [V]", YLabel: "E [fJ]"}
	var exs, eys, egold []float64
	cond := device.Nominal()
	for _, vwl := range stats.Linspace(0.4, 1.0, 13) {
		dv := m.Discharge.DeltaV(2e-9, vwl, cond.VDD, cond.TempC)
		exs = append(exs, vwl)
		eys = append(eys, m.Energy.DischargeEnergy(true, cond.VDD, dv, cond.TempC)*1e15)
		dp := spice.NewDischargePath(c.Tech, vwl, cond)
		res, err := dp.Discharge(2e-9, c.Spice, 0)
		if err != nil {
			return nil, err
		}
		egold = append(egold, spice.DefaultCBL*cond.VDD*(cond.VDD-res.Waveform.Final()[0])*1e15)
	}
	if err := out.EnergyChart.AddSeries("model", exs, eys); err != nil {
		return nil, err
	}
	if err := out.EnergyChart.AddSeries("golden", exs, egold); err != nil {
		return nil, err
	}

	// RMS table: paper vs measured.
	paper := refdata.Figure6RMS()
	r := m.Report
	tbl := report.NewTable("Fig. 6 — RMS modeling errors (paper vs measured)",
		"model", "paper", "measured")
	tbl.AddRow("basic discharge [mV]", paper.BaseMV, r.BaseRMSVolts*1e3)
	tbl.AddRow("supply voltage [mV]", paper.VDDMV, r.VDDRMSVolts*1e3)
	tbl.AddRow("temperature [mV]", paper.TempMV, r.TempRMSVolts*1e3)
	tbl.AddRow("mismatch σ [mV]", paper.SigmaMV, r.SigmaRMSVolts*1e3)
	tbl.AddRow("write energy [fJ]", paper.WriteFJ, r.WriteRMSJoules*1e15)
	tbl.AddRow("discharge energy [fJ]", paper.DischargeFJ, r.DischRMSJoules*1e15)
	out.RMSTable = tbl
	return out, nil
}

// goldenCurve samples one golden transient at the given instants. The
// word-line voltage follows the supply-tracking convention of the
// calibration sweeps.
func (c *Context) goldenCurve(vwl float64, cond device.PVT, ts []float64) ([]float64, error) {
	dp := spice.NewDischargePath(c.Tech, scaledVWL(vwl, cond.VDD), cond)
	last := ts[len(ts)-1]
	res, err := dp.Discharge(last, c.Spice, 0)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(ts))
	for i, t := range ts {
		out[i] = res.Waveform.NodeAt(0, t)
	}
	return out, nil
}
