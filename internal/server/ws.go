package server

// ws.go is the minimal RFC 6455 subset the server, its tests, and the
// smoke self-check need — handshake, unfragmented data frames, and the
// close/ping/pong control frames — implemented over stdlib net/http
// hijacking so the no-new-dependency rule holds. Event payloads are small
// JSON texts; fragmentation and extensions are rejected, not emulated.

import (
	"bufio"
	"crypto/rand"
	"crypto/sha1"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
)

const wsGUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

// wsAccept derives the Sec-WebSocket-Accept token from the client key.
func wsAccept(key string) string {
	h := sha1.Sum([]byte(key + wsGUID))
	return base64.StdEncoding.EncodeToString(h[:])
}

// WebSocket opcodes (RFC 6455 §5.2).
const (
	opText   byte = 0x1
	opBinary byte = 0x2
	opClose  byte = 0x8
	opPing   byte = 0x9
	opPong   byte = 0xA
)

// maxWSPayload bounds one frame; events are a few hundred bytes, so a
// larger frame is a protocol error, not a use case.
const maxWSPayload = 1 << 20

// ErrWSClosed reports a clean close handshake from the peer.
var ErrWSClosed = errors.New("server: websocket closed by peer")

// WSConn is one WebSocket endpoint after the handshake. ReadMessage may be
// used from one goroutine at a time; writes are serialized internally so
// control-frame replies and the event loop can share the connection. The
// client side (DialWS) masks its frames as the RFC requires.
type WSConn struct {
	conn   net.Conn
	br     *bufio.Reader
	wmu    sync.Mutex
	client bool
}

// writeFrame emits one unfragmented frame.
func (c *WSConn) writeFrame(opcode byte, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	var hdr [14]byte
	hdr[0] = 0x80 | opcode
	n := 2
	switch l := len(payload); {
	case l < 126:
		hdr[1] = byte(l)
	case l <= 0xFFFF:
		hdr[1] = 126
		binary.BigEndian.PutUint16(hdr[2:4], uint16(l))
		n = 4
	default:
		hdr[1] = 127
		binary.BigEndian.PutUint64(hdr[2:10], uint64(l))
		n = 10
	}
	if c.client {
		hdr[1] |= 0x80
		var mask [4]byte
		if _, err := rand.Read(mask[:]); err != nil {
			return err
		}
		copy(hdr[n:], mask[:])
		n += 4
		masked := make([]byte, len(payload))
		for i, b := range payload {
			masked[i] = b ^ mask[i%4]
		}
		payload = masked
	}
	if _, err := c.conn.Write(hdr[:n]); err != nil {
		return err
	}
	_, err := c.conn.Write(payload)
	return err
}

// readFrame reads one unfragmented frame, unmasking if needed.
func (c *WSConn) readFrame() (opcode byte, payload []byte, err error) {
	var h [2]byte
	if _, err = io.ReadFull(c.br, h[:]); err != nil {
		return 0, nil, err
	}
	if h[0]&0x80 == 0 || h[0]&0x70 != 0 {
		return 0, nil, fmt.Errorf("server: fragmented or reserved-bit websocket frame %#x", h[0])
	}
	opcode = h[0] & 0x0F
	masked := h[1]&0x80 != 0
	length := uint64(h[1] & 0x7F)
	switch length {
	case 126:
		var ext [2]byte
		if _, err = io.ReadFull(c.br, ext[:]); err != nil {
			return 0, nil, err
		}
		length = uint64(binary.BigEndian.Uint16(ext[:]))
	case 127:
		var ext [8]byte
		if _, err = io.ReadFull(c.br, ext[:]); err != nil {
			return 0, nil, err
		}
		length = binary.BigEndian.Uint64(ext[:])
	}
	if length > maxWSPayload {
		return 0, nil, fmt.Errorf("server: websocket frame of %d bytes exceeds the %d limit", length, maxWSPayload)
	}
	var mask [4]byte
	if masked {
		if _, err = io.ReadFull(c.br, mask[:]); err != nil {
			return 0, nil, err
		}
	}
	payload = make([]byte, length)
	if _, err = io.ReadFull(c.br, payload); err != nil {
		return 0, nil, err
	}
	if masked {
		for i := range payload {
			payload[i] ^= mask[i%4]
		}
	}
	return opcode, payload, nil
}

// ReadMessage returns the next data frame's payload, transparently
// answering pings and surfacing a peer close as ErrWSClosed.
func (c *WSConn) ReadMessage() ([]byte, error) {
	for {
		op, p, err := c.readFrame()
		if err != nil {
			return nil, err
		}
		switch op {
		case opText, opBinary:
			return p, nil
		case opPing:
			if err := c.writeFrame(opPong, p); err != nil {
				return nil, err
			}
		case opPong:
			// Unsolicited pongs are legal keep-alives; skip.
		case opClose:
			// Echo the close (best-effort: the peer may already be gone)
			// to complete the handshake, then report it.
			_ = c.writeFrame(opClose, p)
			return nil, ErrWSClosed
		default:
			return nil, fmt.Errorf("server: unsupported websocket opcode %#x", op)
		}
	}
}

// WriteMessage sends one text frame.
func (c *WSConn) WriteMessage(payload []byte) error {
	return c.writeFrame(opText, payload)
}

// Close sends a normal-closure frame (best-effort) and closes the
// underlying connection.
func (c *WSConn) Close() error {
	_ = c.writeFrame(opClose, []byte{0x03, 0xE8}) // status 1000
	return c.conn.Close()
}

// upgradeWS performs the server half of the handshake, hijacking the HTTP
// connection. On failure the HTTP error has already been written.
func upgradeWS(w http.ResponseWriter, r *http.Request) (*WSConn, error) {
	if !strings.EqualFold(r.Header.Get("Upgrade"), "websocket") ||
		!headerHasToken(r.Header.Get("Connection"), "upgrade") {
		http.Error(w, "websocket upgrade required", http.StatusBadRequest)
		return nil, fmt.Errorf("server: not a websocket upgrade request")
	}
	if v := r.Header.Get("Sec-WebSocket-Version"); v != "13" {
		w.Header().Set("Sec-WebSocket-Version", "13")
		http.Error(w, "unsupported websocket version", http.StatusUpgradeRequired)
		return nil, fmt.Errorf("server: websocket version %q", v)
	}
	key := r.Header.Get("Sec-WebSocket-Key")
	if key == "" {
		http.Error(w, "missing Sec-WebSocket-Key", http.StatusBadRequest)
		return nil, fmt.Errorf("server: missing websocket key")
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		http.Error(w, "websocket unsupported on this connection", http.StatusInternalServerError)
		return nil, fmt.Errorf("server: response writer cannot hijack")
	}
	conn, brw, err := hj.Hijack()
	if err != nil {
		return nil, err
	}
	resp := "HTTP/1.1 101 Switching Protocols\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Accept: " + wsAccept(key) + "\r\n\r\n"
	if _, err := conn.Write([]byte(resp)); err != nil {
		conn.Close()
		return nil, err
	}
	return &WSConn{conn: conn, br: brw.Reader}, nil
}

// headerHasToken reports whether a comma-separated header value contains
// the token (case-insensitive) — Connection can be "keep-alive, Upgrade".
func headerHasToken(value, token string) bool {
	for _, f := range strings.Split(value, ",") {
		if strings.EqualFold(strings.TrimSpace(f), token) {
			return true
		}
	}
	return false
}

// DialWS is the client half of the handshake — the repo's "websocat" for
// tests and the smoke self-check. The URL scheme may be ws:// or http://.
func DialWS(rawURL string) (*WSConn, error) {
	u, err := url.Parse(rawURL)
	if err != nil {
		return nil, err
	}
	host := u.Host
	if u.Port() == "" {
		host = net.JoinHostPort(u.Host, "80")
	}
	var keyBytes [16]byte
	if _, err := rand.Read(keyBytes[:]); err != nil {
		return nil, err
	}
	key := base64.StdEncoding.EncodeToString(keyBytes[:])
	conn, err := net.Dial("tcp", host)
	if err != nil {
		return nil, err
	}
	path := u.RequestURI()
	req := "GET " + path + " HTTP/1.1\r\n" +
		"Host: " + u.Host + "\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Key: " + key + "\r\n" +
		"Sec-WebSocket-Version: 13\r\n\r\n"
	if _, err := conn.Write([]byte(req)); err != nil {
		conn.Close()
		return nil, err
	}
	br := bufio.NewReader(conn)
	resp, err := http.ReadResponse(br, &http.Request{Method: "GET"})
	if err != nil {
		conn.Close()
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusSwitchingProtocols {
		conn.Close()
		return nil, fmt.Errorf("server: websocket handshake refused: %s", resp.Status)
	}
	if got := resp.Header.Get("Sec-WebSocket-Accept"); got != wsAccept(key) {
		conn.Close()
		return nil, fmt.Errorf("server: websocket accept mismatch %q", got)
	}
	return &WSConn{conn: conn, br: br, client: true}, nil
}
