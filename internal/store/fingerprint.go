package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// Fingerprint digests the JSON forms of its parts into a short stable hex
// string. The experiment layers fingerprint the calibrated model, the
// technology card, the solver settings, and the engine's metrics schema —
// anything that changes an evaluation result without changing its key — so
// a store written under one calibration can never serve another.
func Fingerprint(parts ...any) (string, error) {
	h := sha256.New()
	for _, part := range parts {
		b, err := json.Marshal(part)
		if err != nil {
			return "", fmt.Errorf("store: fingerprint: %w", err)
		}
		h.Write(b)
		h.Write([]byte{0}) // part separator: {"a"},{"b"} ≠ {"a","b"}
	}
	return hex.EncodeToString(h.Sum(nil)[:16]), nil
}
