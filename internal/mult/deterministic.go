package mult

import (
	"fmt"
	"math"

	"optima/internal/device"
)

// Deterministic fast path of the behavioral multiplier.
//
// The mismatch-free transfer of one configuration at one condition is tiny:
// the per-bit discharge depends on (a, i) only — the stored operand d
// selects which bit lines participate, it never changes what one bit line
// does — so the whole 16×16 input space reduces to 16×4 distinct
// discharges. A detTable precomputes exactly the model outputs the
// per-multiplication loop would request (VBL, SigmaAt, DischargeEnergy per
// set bit), letting MultiplyDet evaluate one multiplication with plain
// table reads and the same float operations in the same order as
// multiplyDirect — byte-identical Results (pinned by TestMultiplyDet
// matchesMultiply) at a fraction of the cost and with zero allocations
// (the event-kernel path allocates a simulator, signals and closures per
// call).
//
// The engine's Behavioral backend and the DNN LUT builder ride this path;
// Multiply keeps its UseEvents semantics for the paper's DES-ablation
// experiments.

// detTable holds the deterministic per-(a, bit) model outputs of one
// configuration at one condition.
type detTable struct {
	vdd, tempC float64 // condition the table was built for
	// vwl[a] is the word-line voltage for input code a.
	vwl [OperandMax + 1]float64
	// dv[a][i] is the clamped discharge of bit line i under code a.
	dv [OperandMax + 1][OperandBits]float64
	// sigma[a][i] is the analytic mismatch std of that discharge.
	sigma [OperandMax + 1][OperandBits]float64
	// energy[a][i] is the bit line's recharge energy when its d-bit is set.
	energy [OperandMax + 1][OperandBits]float64
}

// buildDetTable evaluates the models over the 16×4 (code, bit) grid at the
// given condition. It depends only on the multiplier's configuration, DAC
// and models — not on the ADC trim — so it can be built before calibration
// and reused by it.
func (b *Behavioral) buildDetTable(cond device.PVT) *detTable {
	t := &detTable{vdd: cond.VDD, tempC: cond.TempC}
	for a := uint(0); a <= OperandMax; a++ {
		vwl := b.wordLineVoltage(a, cond.VDD)
		t.vwl[a] = vwl
		for i := 0; i < OperandBits; i++ {
			bt := b.Cfg.BitTime(i)
			dv := cond.VDD - b.Model.Discharge.VBL(bt, vwl, cond.VDD, cond.TempC)
			if dv < 0 {
				dv = 0
			}
			t.dv[a][i] = dv
			t.sigma[a][i] = b.Model.Discharge.SigmaAt(bt, vwl)
			t.energy[a][i] = b.Model.Energy.DischargeEnergy(true, cond.VDD, dv, cond.TempC)
		}
	}
	return t
}

// combined returns the charge-shared discharge for operands (a, d) from the
// table — the same value, computed by the same operations in the same
// order, as combinedDeltaV with a nil RNG.
func (t *detTable) combined(a, d uint) float64 {
	var sum float64
	for i := 0; i < OperandBits; i++ {
		if d&(1<<uint(i)) != 0 {
			sum += t.dv[a][i]
		}
	}
	return sum / OperandBits
}

// detFor returns the multiplier's precomputed table when it matches the
// current condition, or nil when the caller must fall back to direct model
// evaluation (zero-value Behavioral, or Cond mutated after construction).
func (b *Behavioral) detFor() *detTable {
	if t := b.det; t != nil && t.vdd == b.Cond.VDD && t.tempC == b.Cond.TempC {
		return t
	}
	return nil
}

// MultiplyDet performs one deterministic (mismatch-free) multiplication on
// the precomputed table. It returns exactly the Result of
// Multiply(a, d, nil) — the engine's metric accumulation and the DNN LUT
// are built on this equivalence — without the per-call model evaluations or
// event-kernel allocations.
func (b *Behavioral) MultiplyDet(a, d uint) (Result, error) {
	if a > OperandMax || d > OperandMax {
		return Result{}, fmt.Errorf("mult: operands (%d,%d) exceed %d bits", a, d, OperandBits)
	}
	t := b.detFor()
	if t == nil {
		return b.multiplyDirect(a, d, nil), nil
	}
	res := Result{A: a, D: d, Expected: int(a * d)}
	var sum, varSum float64
	for i := 0; i < OperandBits; i++ {
		if d&(1<<uint(i)) == 0 {
			continue
		}
		dv := t.dv[a][i]
		res.DeltaV[i] = dv
		sum += dv
		sig := t.sigma[a][i]
		varSum += sig * sig
		res.Energy += t.energy[a][i]
	}
	res.VComb = sum / OperandBits
	res.Sigma = math.Sqrt(varSum) / OperandBits
	res.Code = b.quantize(res.VComb, nil)
	res.Energy += b.DACCap*b.Cond.VDD*t.vwl[a] + b.ADCEnergy + b.CtrlEnergy
	return res, nil
}
