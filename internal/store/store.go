// Package store is the persistent, content-addressed result store behind
// the evaluation engine's disk tier: engine.Metrics keyed on the engine's
// stable (backend, config, condition) key plus a model/calibration
// fingerprint, spilled to disk so corner results survive the process —
// `optima all` after `optima dse` pays zero re-evaluation, and CI jobs
// reuse each other's corners.
//
// Layout and durability model:
//
//   - The store is an append-only segment log under one directory,
//     partitioned by key hash (engine.Key.Hash, stable across hosts) into
//     a fixed number of segment files (seg-NN.seg). Partitioning keeps
//     append contention per-partition and gives a future key-range-sharded
//     or remote store a drop-in seam: the engine.Store interface never
//     exposes the layout.
//   - Records use the format-v2 binary codec (codec.go): length-prefixed,
//     fixed-width key/metric fields, one CRC32 per record. Format-v1
//     directories (JSONL segments) migrate transparently at open
//     (migrate.go) — same keys, same values, zero re-evaluation.
//   - Every record carries the writer's fingerprint. Only records matching
//     the store's open fingerprint enter the in-memory index, so a stale
//     calibration can never serve wrong results — it only costs
//     recomputation.
//   - Appends are crash-tolerant: a truncated or corrupt tail record is
//     skipped on open (never fatal), and the damaged partition is
//     compacted on the spot so new appends don't land behind garbage.
//     Undamaged partitions are only compacted when their garbage
//     (superseded or foreign-fingerprint records) exceeds ~25% of the
//     segment — opening a large clean store is a pure read, not a rewrite.
//   - Compaction rewrites a partition from its live index via an atomic
//     write-then-rename snapshot; a crash mid-compaction leaves the old
//     segment intact.
//   - Retention bounds long-lived shared caches at open: whole segments
//     older than Options.MaxAge are evicted outright, then segments are
//     evicted least-recently-written first until the rest fits
//     Options.MaxBytes. Evicted corners recompute on demand.
//
// The store implements engine.Store and is wired in as the middle tier of
// the engine's memory → disk → backend lookup path (see exp.Context and the
// CLIs' -cache-dir flag).
package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"optima/internal/engine"
	"optima/internal/obs"
)

// DefaultPartitions is the segment count new stores are created with.
const DefaultPartitions = 16

// FormatVersion identifies the on-disk layout. Version 1 (JSONL segments)
// is migrated in place at open; anything else from the future is rejected
// by Open (the caller degrades to a memory-only cache).
const FormatVersion = 2

// formatVersionV1 is the legacy JSONL layout, readable via migration.
const formatVersionV1 = 1

// segSuffix is the v2 segment file extension.
const segSuffix = ".seg"

// segPath names partition i's segment file.
func segPath(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("seg-%02d%s", i, segSuffix))
}

// compactGarbageDenom sets the open-time compaction threshold: a partition
// is rewritten when garbage records exceed 1/compactGarbageDenom (~25%) of
// its total. Below that, the open leaves the segment file untouched.
const compactGarbageDenom = 4

const manifestName = "manifest.json"

// Options configures Open.
type Options struct {
	// Fingerprint identifies the model/calibration state that produced (and
	// may consume) the results. Records with a different fingerprint are
	// treated as garbage: never served, dropped at compaction.
	Fingerprint string
	// Partitions sets the segment count for a newly created store
	// (<= 0 = DefaultPartitions). An existing store keeps its own count.
	Partitions int
	// MaxBytes bounds the store's on-disk size: at open, whole segments are
	// evicted least-recently-written first (by file modification time, which
	// appends keep fresh) until the remaining segments fit the budget.
	// Evicted results only cost recomputation — the retention policy for
	// long-lived shared caches. <= 0 means unlimited.
	MaxBytes int64
	// MaxAge bounds the store's staleness: at open, whole segments whose
	// modification time is older than the bound are evicted outright,
	// before the MaxBytes pass. An age bound keeps a shared cache from
	// serving arbitrarily old (if still fingerprint-valid) results and
	// reclaims directories abandoned by retired configurations. <= 0 means
	// unlimited.
	MaxAge time.Duration
	// Recorder, when non-nil, receives the store's telemetry: spans for
	// open/migration/compaction/append work, hit/miss and record counters,
	// and scrape-time gauges for segment bytes and live/garbage records.
	// Timing and counts never affect what the store serves or writes.
	Recorder *obs.Recorder
}

// storeMetrics holds the store's instrument handles; the zero value (no
// recorder) is inert — every obs method no-ops on a nil receiver.
type storeMetrics struct {
	rec         *obs.Recorder
	getHits     *obs.Counter
	getMisses   *obs.Counter
	putRecords  *obs.Counter
	migrated    *obs.Counter
	compactions *obs.Counter
	tornTails   *obs.Counter
}

func newStoreMetrics(rec *obs.Recorder) storeMetrics {
	if rec == nil {
		return storeMetrics{}
	}
	reg := rec.Metrics()
	return storeMetrics{
		rec:         rec,
		getHits:     reg.Counter("optima_store_gets_total", "store index lookups", "result", "hit"),
		getMisses:   reg.Counter("optima_store_gets_total", "store index lookups", "result", "miss"),
		putRecords:  reg.Counter("optima_store_put_records_total", "records appended to segment files"),
		migrated:    reg.Counter("optima_store_migrated_segments_total", "v1 JSONL segments converted to the v2 codec at open"),
		compactions: reg.Counter("optima_store_compactions_total", "partition rewrites (open-time repair, garbage threshold, explicit Compact)"),
		tornTails:   reg.Counter("optima_store_torn_tails_total", "segments whose torn or corrupt tail was repaired at open"),
	}
}

// manifest is the store's snapshot metadata, rewritten atomically on every
// Open and Close.
type manifest struct {
	Version     int    `json:"version"`
	Partitions  int    `json:"partitions"`
	Fingerprint string `json:"fingerprint"` // last writer, informational
}

// record is one stored result: the writer's fingerprint, the evaluation
// key, and its metrics. codec.go defines its wire form.
type record struct {
	FP  string
	Key engine.Key
	Met engine.Metrics
}

// partition is one segment file plus its in-memory index of live records.
type partition struct {
	mu    sync.Mutex
	path  string
	file  *os.File
	index map[engine.Key]engine.Metrics
	total int // records in the segment, live or garbage
}

// Store is a disk-backed engine.Store. All methods are safe for concurrent
// use within one process; across processes the store is single-writer,
// enforced by an exclusive lock on the directory (where the platform
// supports it) — a second Open fails cleanly instead of racing open-time
// compaction.
type Store struct {
	dir  string
	fp   string
	lock *os.File
	sm   storeMetrics

	parts []*partition

	// statsMu guards the open/compaction accounting below (satellite
	// counters surfaced via Stats; the partitions guard their own state).
	statsMu     sync.Mutex
	migrated    int
	compactions int
	tornTails   int
}

var _ engine.Store = (*Store)(nil)

// Open creates or loads the store at dir. Existing segments are scanned
// into the index; truncated tails are skipped and repaired, and partitions
// that are mostly garbage are compacted.
func Open(dir string, opts Options) (*Store, error) {
	rec := opts.Recorder
	sm := newStoreMetrics(rec)
	openSpan := rec.StartSpan(0, obs.CatStore, "open", dir)
	defer openSpan.End()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	nparts := opts.Partitions
	if nparts <= 0 {
		nparts = DefaultPartitions
	}
	lock, err := acquireLock(filepath.Join(dir, ".lock"))
	if err != nil {
		return nil, err
	}
	if m, err := readManifest(filepath.Join(dir, manifestName)); err != nil {
		releaseLock(lock)
		return nil, err
	} else if m != nil {
		if m.Version != FormatVersion && m.Version != formatVersionV1 {
			releaseLock(lock)
			return nil, fmt.Errorf("store: %s has format version %d, want %d", dir, m.Version, FormatVersion)
		}
		if m.Partitions > 0 {
			nparts = m.Partitions // layout is fixed at creation
		}
	}
	// Upgrade legacy JSONL directories in place before the v2 load. The
	// manifest-less case covers a torn manifest write over a v1 store: the
	// segment files themselves identify the format.
	var migrated int
	if hasV1Segments(dir) {
		migSpan := rec.StartSpan(openSpan.ID(), obs.CatStore, "migrate-v1", "")
		migrated, err = migrateV1(dir)
		migSpan.End()
		if err != nil {
			releaseLock(lock)
			return nil, err
		}
		sm.migrated.Add(float64(migrated))
	}
	if err := applyRetention(dir, nparts, opts.MaxBytes, opts.MaxAge); err != nil {
		releaseLock(lock)
		return nil, err
	}
	s := &Store{
		dir: dir, fp: opts.Fingerprint, lock: lock, sm: sm,
		parts:    make([]*partition, nparts),
		migrated: migrated,
	}
	var loadArg string
	if rec != nil {
		loadArg = fmt.Sprintf("%d partitions", nparts)
	}
	loadSpan := rec.StartSpan(openSpan.ID(), obs.CatStore, "load", loadArg)
	for i := range s.parts {
		p, info, err := loadPartition(segPath(dir, i), opts.Fingerprint)
		if err != nil {
			loadSpan.End()
			s.closeFiles()
			return nil, err
		}
		s.parts[i] = p
		if info.torn {
			s.tornTails++
			sm.tornTails.Inc()
		}
		if info.compacted {
			s.compactions++
			sm.compactions.Inc()
		}
	}
	loadSpan.End()
	if err := s.writeManifest(); err != nil {
		s.closeFiles()
		return nil, err
	}
	s.registerGauges()
	return s, nil
}

// registerGauges exposes the store's sizing as scrape-time gauges. The
// functions run at scrape with no registry lock held, so taking the
// partition locks (Stats) and statting segment files is safe; values are
// read fresh from the owning structures instead of being mirrored.
func (s *Store) registerGauges() {
	reg := s.sm.rec.Metrics()
	if reg == nil {
		return
	}
	reg.GaugeFunc("optima_store_segment_bytes", "total size of the store's segment files",
		func() float64 {
			var total int64
			for i := range s.parts {
				if fi, err := os.Stat(segPath(s.dir, i)); err == nil {
					total += fi.Size()
				}
			}
			return float64(total)
		})
	reg.GaugeFunc("optima_store_records", "records held in segment files by state",
		func() float64 { return float64(s.Stats().Live) }, "state", "live")
	reg.GaugeFunc("optima_store_records", "records held in segment files by state",
		func() float64 { return float64(s.Stats().Garbage) }, "state", "garbage")
}

// applyRetention enforces Options.MaxAge and Options.MaxBytes before the
// segments are loaded. The age pass runs first and unconditionally: every
// segment whose modification time is older than maxAge is deleted outright.
// Then, while the remaining segment files exceed the byte budget, the
// segment with the oldest modification time is deleted (its results
// recompute on demand; correctness never depends on the store's contents).
// Ties break by file name so eviction is deterministic. A bound <= 0
// disables that pass.
func applyRetention(dir string, nparts int, maxBytes int64, maxAge time.Duration) error {
	if maxBytes <= 0 && maxAge <= 0 {
		return nil
	}
	type seg struct {
		path  string
		size  int64
		mtime int64
	}
	var segs []seg
	var total int64
	cutoff := int64(math.MinInt64)
	if maxAge > 0 {
		// The age bound is wall-clock by definition; it gates which segments
		// survive open, never the bytes or metrics a segment holds.
		//lint:ignore determinism retention age is measured against the wall clock by design and never feeds persisted bytes or results
		cutoff = time.Now().Add(-maxAge).UnixNano()
	}
	for i := 0; i < nparts; i++ {
		path := segPath(dir, i)
		fi, err := os.Stat(path)
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			return fmt.Errorf("store: retention: %w", err)
		}
		if fi.ModTime().UnixNano() < cutoff {
			if err := os.Remove(path); err != nil {
				return fmt.Errorf("store: retention: %w", err)
			}
			continue
		}
		segs = append(segs, seg{path: path, size: fi.Size(), mtime: fi.ModTime().UnixNano()})
		total += fi.Size()
	}
	if maxBytes <= 0 {
		return nil
	}
	sort.Slice(segs, func(i, j int) bool {
		if segs[i].mtime != segs[j].mtime {
			return segs[i].mtime < segs[j].mtime
		}
		return segs[i].path < segs[j].path
	})
	for _, victim := range segs {
		if total <= maxBytes {
			break
		}
		if err := os.Remove(victim.path); err != nil {
			return fmt.Errorf("store: retention: %w", err)
		}
		total -= victim.size
	}
	return nil
}

// partLoadInfo reports what loading one partition had to do — counts the
// open path used to silently swallow, now surfaced through Stats and the
// store counters.
type partLoadInfo struct {
	// torn: the segment ended in a truncated or corrupt record and the
	// valid prefix was rewritten in place.
	torn bool
	// compacted: the partition was rewritten at load (torn tail or the
	// garbage threshold).
	compacted bool
}

// loadPartition scans one segment into an index. The scan stops at the
// first record that does not decode — a torn append or CRC-detected
// corruption — and the partition is compacted on the spot so the valid
// prefix is all that remains and new appends land after readable data.
func loadPartition(path, fp string) (*partition, partLoadInfo, error) {
	p := &partition{path: path, index: map[engine.Key]engine.Metrics{}}
	var info partLoadInfo
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, info, fmt.Errorf("store: %w", err)
	}
	for len(data) > 0 {
		rec, n, ok := decodeRecord(data)
		if !ok {
			// Torn or corrupt record: everything from here on is unreliable
			// (the framing after a bad length prefix is gone). Keep the
			// valid prefix; the rewrite below repairs the file.
			info.torn = true
			break
		}
		data = data[n:]
		p.total++
		if rec.FP == fp {
			p.index[rec.Key] = rec.Met
		}
	}
	// Repair torn tails; otherwise leave the segment alone unless enough of
	// it is garbage (superseded values, foreign fingerprints) to be worth a
	// rewrite — a warm open of a clean store must not rewrite anything.
	if info.torn || p.garbage()*compactGarbageDenom > p.total {
		if err := p.rewrite(fp); err != nil {
			return nil, info, err
		}
		info.compacted = true
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, info, fmt.Errorf("store: %w", err)
	}
	p.file = f
	return p, info, nil
}

// validMetrics rejects records whose payload decoded but is semantically
// impossible (NaN from bit rot); a corrupt result must degrade to
// recomputation, never to a wrong run.
func validMetrics(m engine.Metrics) bool {
	for _, v := range []float64{m.EpsMul, m.EpsLarge, m.EpsSmall, m.EMul, m.SigmaMaxLSB, m.SigmaMaxVolt, m.LSBVolt} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

func (p *partition) garbage() int { return p.total - len(p.index) }

// rewrite snapshots the partition's live records to a temp file and
// atomically renames it over the segment. Callers hold p.mu (or exclusive
// access during load). The append handle, if open, is reopened by the
// caller via reopen.
func (p *partition) rewrite(fp string) error {
	tmp := p.path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	// Encode each live record independently and concatenate them in sorted
	// byte order: a compacted segment's content is then a pure function of
	// the record set, not of Go's randomized map iteration — two processes
	// compacting identical data write identical bytes.
	recs := make([][]byte, 0, len(p.index))
	for key, met := range p.index {
		recs = append(recs, appendRecord(nil, record{FP: fp, Key: key, Met: met}))
	}
	sort.Slice(recs, func(i, j int) bool { return bytes.Compare(recs[i], recs[j]) < 0 })
	var buf []byte
	for _, rec := range recs {
		buf = append(buf, rec...)
	}
	if _, err := f.Write(buf); err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := os.Rename(tmp, p.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: compact: %w", err)
	}
	p.total = len(p.index)
	return nil
}

// reopen refreshes the append handle after a rewrite replaced the file.
func (p *partition) reopen() error {
	if p.file != nil {
		p.file.Close()
	}
	f, err := os.OpenFile(p.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	p.file = f
	return nil
}

// part routes a key to its partition by content hash (engine.Key.Hash: the
// hash covers every key field, so the mapping is stable across processes
// and hosts — the property a key-range-sharded remote store needs — and
// allocation-free, so routing costs nothing on the lookup path).
func (s *Store) part(key engine.Key) *partition {
	return s.parts[key.Hash()%uint64(len(s.parts))]
}

// Get implements engine.Store: an in-memory index lookup, fingerprint
// already enforced at load/append time.
func (s *Store) Get(key engine.Key) (engine.Metrics, bool) {
	p := s.part(key)
	p.mu.Lock()
	met, ok := p.index[key]
	p.mu.Unlock()
	if ok {
		s.sm.getHits.Inc()
	} else {
		s.sm.getMisses.Inc()
	}
	return met, ok
}

// Put persists a single result.
func (s *Store) Put(key engine.Key, met engine.Metrics) error {
	return s.PutBatch([]engine.CacheEntry{{Key: key, Met: met}})
}

// PutBatch implements engine.Store: results are grouped by partition and
// appended with one write per touched segment, amortizing syscall and lock
// traffic for batched submission.
func (s *Store) PutBatch(entries []engine.CacheEntry) error {
	if len(entries) == 0 {
		return nil
	}
	var putArg string
	if s.sm.rec != nil {
		putArg = fmt.Sprintf("%d records", len(entries))
	}
	span := s.sm.rec.StartSpan(0, obs.CatStore, "put-batch", putArg)
	defer span.End()
	s.sm.putRecords.Add(float64(len(entries)))
	nparts := uint64(len(s.parts))
	if len(entries) == 1 {
		return s.parts[entries[0].Key.Hash()%nparts].append(s.fp, entries)
	}
	// Bucket by partition into one exactly-sized backing array: a counting
	// pass, prefix sums, then stable placement. Entries keep their input
	// order within each partition, so duplicate keys in one batch resolve
	// last-wins exactly as looped Puts would.
	counts := make([]int, len(s.parts)+1)
	for i := range entries {
		counts[entries[i].Key.Hash()%nparts+1]++
	}
	for i := 1; i < len(counts); i++ {
		counts[i] += counts[i-1]
	}
	offs := append([]int(nil), counts...)
	backing := make([]engine.CacheEntry, len(entries))
	for i := range entries {
		p := entries[i].Key.Hash() % nparts
		backing[counts[p]] = entries[i]
		counts[p]++
	}
	var firstErr error
	for i, p := range s.parts {
		group := backing[offs[i]:offs[i+1]]
		if len(group) == 0 {
			continue
		}
		if err := p.append(s.fp, group); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// append writes a group of records to one segment under its lock. The
// group is encoded outside the lock into one exactly-sized buffer, so the
// segment sees a single write syscall per batch.
func (p *partition) append(fp string, ents []engine.CacheEntry) error {
	size := 0
	for i := range ents {
		size += recordHeaderLen + recordBodyFixedLen + len(fp) + len(ents[i].Key.Backend)
	}
	buf := make([]byte, 0, size)
	for _, ent := range ents {
		buf = appendRecord(buf, record{FP: fp, Key: ent.Key, Met: ent.Met})
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, err := p.file.Write(buf); err != nil {
		return fmt.Errorf("store: append: %w", err)
	}
	for _, ent := range ents {
		// Overwrites of an existing key leave the old record as garbage
		// until the next compaction.
		p.index[ent.Key] = ent.Met
		p.total++
	}
	return nil
}

// Compact rewrites every partition down to its live records (current
// fingerprint, latest value per key) via atomic write-then-rename.
func (s *Store) Compact() error {
	span := s.sm.rec.StartSpan(0, obs.CatStore, "compact", "")
	defer span.End()
	for _, p := range s.parts {
		p.mu.Lock()
		err := p.rewrite(s.fp)
		if err == nil {
			err = p.reopen()
		}
		p.mu.Unlock()
		if err != nil {
			return err
		}
		s.statsMu.Lock()
		s.compactions++
		s.statsMu.Unlock()
		s.sm.compactions.Inc()
	}
	return nil
}

// Stats summarizes the store's contents and the maintenance work it has
// performed since Open.
type Stats struct {
	// Live is the number of results servable under the open fingerprint.
	Live int
	// Garbage counts stale records (other fingerprints, superseded values)
	// awaiting compaction.
	Garbage int
	// Partitions is the segment count.
	Partitions int
	// Migrated counts legacy v1 JSONL segments converted at open.
	Migrated int
	// Compactions counts partition rewrites: open-time repairs, the
	// open-time garbage threshold, and explicit Compact passes.
	Compactions int
	// TornTails counts segments whose truncated or corrupt tail was
	// repaired at open — the crash-recovery work that used to happen
	// silently.
	TornTails int
}

// String renders the stats for log lines. Maintenance clauses appear only
// when that work actually happened.
func (st Stats) String() string {
	out := fmt.Sprintf("%d results on disk (%d stale) across %d segments", st.Live, st.Garbage, st.Partitions)
	if st.Migrated > 0 {
		out += fmt.Sprintf(", %d segments migrated from v1", st.Migrated)
	}
	if st.TornTails > 0 {
		out += fmt.Sprintf(", %d torn tails repaired", st.TornTails)
	}
	if st.Compactions > 0 {
		out += fmt.Sprintf(", %d compactions", st.Compactions)
	}
	return out
}

// Stats returns a snapshot of the store's accounting.
func (s *Store) Stats() Stats {
	s.statsMu.Lock()
	st := Stats{
		Partitions:  len(s.parts),
		Migrated:    s.migrated,
		Compactions: s.compactions,
		TornTails:   s.tornTails,
	}
	s.statsMu.Unlock()
	for _, p := range s.parts {
		p.mu.Lock()
		st.Live += len(p.index)
		st.Garbage += p.garbage()
		p.mu.Unlock()
	}
	return st
}

// Len returns the number of live results.
func (s *Store) Len() int { return s.Stats().Live }

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Close rewrites the manifest snapshot and closes the segment files.
// Appends are unbuffered, so no data is lost if Close is skipped.
func (s *Store) Close() error {
	err := s.writeManifest()
	s.closeFiles()
	return err
}

func (s *Store) closeFiles() {
	for _, p := range s.parts {
		if p == nil || p.file == nil {
			continue
		}
		p.mu.Lock()
		p.file.Close()
		p.file = nil
		p.mu.Unlock()
	}
	releaseLock(s.lock)
	s.lock = nil
}

func readManifest(path string) (*manifest, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		// A torn manifest write must not brick the store: the segment scan
		// does not depend on it beyond the partition count, which a fresh
		// manifest below restores from the default/options.
		return nil, nil
	}
	return &m, nil
}

// writeManifest snapshots the store metadata via write-then-rename.
func (s *Store) writeManifest() error {
	m := manifest{Version: FormatVersion, Partitions: len(s.parts), Fingerprint: s.fp}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("store: marshal manifest: %w", err)
	}
	path := filepath.Join(s.dir, manifestName)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	return nil
}
