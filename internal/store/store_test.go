package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"optima/internal/device"
	"optima/internal/engine"
	"optima/internal/mult"
)

// testKey builds a distinct, stable key. The float fields round-trip
// exactly through JSON (shortest-representation encoding), which the
// index-equality of reopened stores depends on.
func testKey(i int) engine.Key {
	return engine.Key{
		Backend: "fake",
		Job: engine.Job{
			Config: mult.Config{Tau0: float64(i+1) * 0.13e-9, VDAC0: 0.3, VDACFS: 1.0},
			Cond:   device.Nominal(),
		},
	}
}

func testMet(i int) engine.Metrics {
	k := testKey(i)
	return engine.Metrics{
		Config: k.Config, Cond: k.Cond,
		EpsMul: float64(i) * 0.25, EpsLarge: float64(i) * 0.5, EpsSmall: float64(i) * 0.125,
		EMul: float64(i+1) * 1e-15, SigmaMaxLSB: 0.4, SigmaMaxVolt: 1.7e-3, LSBVolt: 4.2e-3,
	}
}

func fillStore(t *testing.T, s *Store, n int) {
	t.Helper()
	batch := make([]engine.CacheEntry, n)
	for i := range batch {
		batch[i] = engine.CacheEntry{Key: testKey(i), Met: testMet(i)}
	}
	if err := s.PutBatch(batch); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Fingerprint: "fp-a"})
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, s, 40)
	if got := s.Len(); got != 40 {
		t.Fatalf("store holds %d results, want 40", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s, err = Open(dir, Options{Fingerprint: "fp-a"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.Len(); got != 40 {
		t.Fatalf("reopened store holds %d results, want 40", got)
	}
	for i := 0; i < 40; i++ {
		met, ok := s.Get(testKey(i))
		if !ok {
			t.Fatalf("result %d lost across reopen", i)
		}
		if met != testMet(i) {
			t.Fatalf("result %d corrupted across reopen:\n got %+v\nwant %+v", i, met, testMet(i))
		}
	}
	if _, ok := s.Get(testKey(99)); ok {
		t.Fatal("phantom result for a key never written")
	}
}

// segments returns the non-empty segment files of a store directory.
func segments(t *testing.T, dir string) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, p := range paths {
		if fi, err := os.Stat(p); err == nil && fi.Size() > 0 {
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		t.Fatal("no non-empty segments")
	}
	return out
}

func TestTruncatedTailRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Fingerprint: "fp-a"})
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, s, 30)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the log two ways: append a partial record (a length prefix
	// promising more body than follows) to one segment — a crash
	// mid-append — and chop bytes off the end of another, destroying its
	// final record.
	segs := segments(t, dir)
	torn := make([]byte, recordHeaderLen+10)
	binary.LittleEndian.PutUint32(torn, uint32(recordBodyFixedLen+20))
	appendBytes(t, segs[0], torn)
	var chopped string
	if len(segs) > 1 {
		chopped = segs[len(segs)-1]
		truncateBy(t, chopped, 10)
	}

	s, err = Open(dir, Options{Fingerprint: "fp-a"})
	if err != nil {
		t.Fatalf("truncated tail must not be fatal: %v", err)
	}
	survivors := 0
	for i := 0; i < 30; i++ {
		if met, ok := s.Get(testKey(i)); ok {
			if met != testMet(i) {
				t.Fatalf("survivor %d corrupted: %+v", i, met)
			}
			survivors++
		}
	}
	// The torn append loses nothing; the chopped segment loses exactly its
	// final record.
	minSurvivors := 30
	if chopped != "" {
		minSurvivors = 29
	}
	if survivors < minSurvivors {
		t.Fatalf("%d results survived, want >= %d", survivors, minSurvivors)
	}
	// The open repaired the segments: new appends must land on readable
	// ground and survive another reopen.
	if err := s.Put(testKey(100), testMet(100)); err != nil {
		t.Fatal(err)
	}
	before := s.Len()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s, err = Open(dir, Options{Fingerprint: "fp-a"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.Len(); got != before {
		t.Fatalf("post-repair reopen holds %d results, want %d", got, before)
	}
	if _, ok := s.Get(testKey(100)); !ok {
		t.Fatal("record appended after repair lost")
	}
}

func appendBytes(t *testing.T, path string, b []byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write(b); err != nil {
		t.Fatal(err)
	}
}

func truncateBy(t *testing.T, path string, n int64) {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() <= n {
		t.Fatalf("segment %s too small to truncate", path)
	}
	if err := os.Truncate(path, fi.Size()-n); err != nil {
		t.Fatal(err)
	}
}

func TestFingerprintMismatchInvalidation(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Fingerprint: "calibration-a"})
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, s, 10)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// A recalibrated session must see none of calibration A's results.
	s, err = Open(dir, Options{Fingerprint: "calibration-b"})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Len(); got != 0 {
		t.Fatalf("stale calibration served %d results", got)
	}
	if _, ok := s.Get(testKey(3)); ok {
		t.Fatal("result from another calibration must never be served")
	}
	// B writes its own result for the same key — same key, different
	// fingerprint, different value.
	bMet := testMet(3)
	bMet.EpsMul += 1
	if err := s.Put(testKey(3), bMet); err != nil {
		t.Fatal(err)
	}
	if met, _ := s.Get(testKey(3)); met != bMet {
		t.Fatal("own write not served")
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Live != 1 || st.Garbage != 0 {
		t.Fatalf("post-compaction stats %+v, want 1 live / 0 garbage", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCompactionCollapsesOverwrites(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Fingerprint: "fp"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	final := testMet(0)
	for rev := 0; rev < 50; rev++ {
		final.EpsMul = float64(rev)
		if err := s.Put(testKey(0), final); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Live != 1 || st.Garbage != 49 {
		t.Fatalf("pre-compaction stats %+v, want 1 live / 49 garbage", st)
	}
	sizeBefore := dirSize(t, dir)
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Live != 1 || st.Garbage != 0 {
		t.Fatalf("post-compaction stats %+v", st)
	}
	if sizeAfter := dirSize(t, dir); sizeAfter >= sizeBefore {
		t.Fatalf("compaction did not shrink the log: %d -> %d bytes", sizeBefore, sizeAfter)
	}
	if met, ok := s.Get(testKey(0)); !ok || met != final {
		t.Fatalf("latest revision lost by compaction: %+v", met)
	}
}

func dirSize(t *testing.T, dir string) int64 {
	t.Helper()
	var total int64
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if fi, err := e.Info(); err == nil {
			total += fi.Size()
		}
	}
	return total
}

// TestConcurrentReadWrite exercises the store under -race: concurrent
// PutBatch, Get and Compact must be safe.
func TestConcurrentReadWrite(t *testing.T) {
	s, err := Open(t.TempDir(), Options{Fingerprint: "fp"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				idx := g*50 + i
				if err := s.Put(testKey(idx), testMet(idx)); err != nil {
					t.Error(err)
					return
				}
				if met, ok := s.Get(testKey(idx)); !ok || met != testMet(idx) {
					t.Errorf("read-your-write failed for %d", idx)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if err := s.Compact(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if got := s.Len(); got != 400 {
		t.Fatalf("store holds %d results, want 400", got)
	}
}

func TestFormatVersionRejected(t *testing.T) {
	dir := t.TempDir()
	manifest := fmt.Sprintf(`{"version": %d, "partitions": 16, "fingerprint": "x"}`, FormatVersion+1)
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte(manifest), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{Fingerprint: "fp"}); err == nil {
		t.Fatal("foreign format version must be rejected")
	}
}

func TestFingerprintHelper(t *testing.T) {
	a1, err := Fingerprint("model", 1, struct{ X float64 }{2.5})
	if err != nil {
		t.Fatal(err)
	}
	a2, _ := Fingerprint("model", 1, struct{ X float64 }{2.5})
	if a1 != a2 {
		t.Fatal("fingerprint not deterministic")
	}
	b, _ := Fingerprint("model", 1, struct{ X float64 }{2.6})
	if a1 == b {
		t.Fatal("fingerprint ignores content")
	}
	c, _ := Fingerprint("model", 1)
	if a1 == c {
		t.Fatal("fingerprint ignores part count")
	}
}

// countingBackend lets the tiered-engine test observe real evaluations.
type countingBackend struct{ evals atomic.Int64 }

func (b *countingBackend) Name() string { return "fake" }

func (b *countingBackend) Evaluate(cfg mult.Config, cond device.PVT) (engine.Metrics, error) {
	b.evals.Add(1)
	return engine.Metrics{Config: cfg, Cond: cond, EpsMul: cfg.Tau0 * 1e9, EMul: cfg.VDACFS * 1e-15}, nil
}

// TestTieredEngineAcrossProcesses is the store's reason to exist: a second
// engine (a new "process") over the same directory performs zero backend
// evaluations, and a corrupted tail degrades to recomputation — never to a
// wrong or failed run.
func TestTieredEngineAcrossProcesses(t *testing.T) {
	dir := t.TempDir()
	jobs := make([]engine.Job, 24)
	for i := range jobs {
		jobs[i] = testKey(i).Job
	}

	s1, err := Open(dir, Options{Fingerprint: "fp"})
	if err != nil {
		t.Fatal(err)
	}
	backend1 := &countingBackend{}
	cold, err := engine.New(backend1, 4).WithStore(s1).EvaluateBatch(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if got := backend1.evals.Load(); got != 24 {
		t.Fatalf("cold run evaluated %d corners, want 24", got)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// Second session: zero backend evaluations, zero engine misses.
	s2, err := Open(dir, Options{Fingerprint: "fp"})
	if err != nil {
		t.Fatal(err)
	}
	backend2 := &countingBackend{}
	eng2 := engine.New(backend2, 4).WithStore(s2)
	warm, err := eng2.EvaluateBatch(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if got := backend2.evals.Load(); got != 0 {
		t.Fatalf("warm run evaluated %d corners, want 0", got)
	}
	st := eng2.Stats()
	if st.Misses != 0 || st.DiskHits != 24 {
		t.Fatalf("warm stats %+v, want 0 misses / 24 disk hits", st)
	}
	for i := range jobs {
		if cold[i] != warm[i] {
			t.Fatalf("disk-served result %d differs from computed result", i)
		}
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt every segment tail; the third session recomputes the damage
	// and still returns identical results.
	for _, seg := range segments(t, dir) {
		truncateBy(t, seg, 7)
	}
	s3, err := Open(dir, Options{Fingerprint: "fp"})
	if err != nil {
		t.Fatalf("corrupt tails must not fail the run: %v", err)
	}
	defer s3.Close()
	backend3 := &countingBackend{}
	eng3 := engine.New(backend3, 4).WithStore(s3)
	healed, err := eng3.EvaluateBatch(jobs)
	if err != nil {
		t.Fatal(err)
	}
	st = eng3.Stats()
	if st.Misses == 0 {
		t.Fatal("every segment lost its tail record; some corners must recompute")
	}
	if st.Misses+st.DiskHits != 24 {
		t.Fatalf("stats %+v do not cover the 24 corners", st)
	}
	for i := range jobs {
		if cold[i] != healed[i] {
			t.Fatalf("post-corruption result %d differs", i)
		}
	}
}

// TestClosedStoreFailsWrites pins the failure mode: writes to a closed
// store error (the engine treats that as a store error, not a run failure).
func TestClosedStoreFailsWrites(t *testing.T) {
	s, err := Open(t.TempDir(), Options{Fingerprint: "fp"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	err = s.Put(testKey(0), testMet(0))
	if err == nil {
		t.Fatal("write to closed store must error")
	}
	if !errors.Is(err, os.ErrInvalid) {
		t.Logf("closed-store write error: %v", err)
	}
}

// TestSingleWriterExclusion: a second process (here: a second Open) must be
// rejected while the store is held, and admitted after Close — the
// cross-process safety net for open-time compaction.
func TestSingleWriterExclusion(t *testing.T) {
	if !lockSupported {
		t.Skip("no flock on this platform")
	}
	dir := t.TempDir()
	s1, err := Open(dir, Options{Fingerprint: "fp"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{Fingerprint: "fp"}); err == nil {
		t.Fatal("second Open of a held store must fail")
	}
	fillStore(t, s1, 5)
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{Fingerprint: "fp"})
	if err != nil {
		t.Fatalf("reopen after Close must succeed: %v", err)
	}
	defer s2.Close()
	if got := s2.Len(); got != 5 {
		t.Fatalf("reopened store holds %d results, want 5", got)
	}
}

// TestRetentionEvictsOldestSegments pins the MaxBytes policy: reopening
// with a tiny budget removes whole segments least-recently-written first
// (deterministic mtime order), keeps the freshest data, and never fails the
// open — evicted corners only cost recomputation.
func TestRetentionEvictsOldestSegments(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Fingerprint: "fp-a"})
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, s, 64)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Spread the segment mtimes so "oldest" is well-defined and newest-last
	// is deterministic: seg-00 oldest … seg-15 newest.
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != DefaultPartitions {
		t.Fatalf("found %d segments, want %d", len(segs), DefaultPartitions)
	}
	sort.Strings(segs)
	base := time.Now().Add(-time.Hour)
	var total int64
	sizes := make(map[string]int64)
	for i, p := range segs {
		when := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(p, when, when); err != nil {
			t.Fatal(err)
		}
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		sizes[p] = fi.Size()
		total += fi.Size()
	}

	// Budget for roughly the newest quarter of the data.
	budget := total / 4
	s, err = Open(dir, Options{Fingerprint: "fp-a", MaxBytes: budget})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// The surviving bytes fit the budget, and the survivors are exactly a
	// suffix of the mtime order (oldest evicted first).
	var kept int64
	firstKept := -1
	for i, p := range segs {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() > 0 {
			if firstKept < 0 {
				firstKept = i
			}
			if fi.Size() != sizes[p] {
				t.Fatalf("surviving segment %s changed size", p)
			}
			kept += fi.Size()
		} else if firstKept >= 0 {
			t.Fatalf("segment %s evicted after an older survivor — not oldest-first", p)
		}
	}
	if kept > budget {
		t.Fatalf("surviving segments hold %d bytes, budget %d", kept, budget)
	}
	if firstKept < 0 {
		t.Fatal("retention evicted everything despite a positive budget")
	}
	if firstKept == 0 {
		t.Fatal("retention evicted nothing despite an over-budget store")
	}

	// Keys in surviving segments still serve; the store stays writable.
	if s.Len() == 0 {
		t.Fatal("no live results survived retention")
	}
	found := 0
	for i := 0; i < 64; i++ {
		if met, ok := s.Get(testKey(i)); ok {
			if met != testMet(i) {
				t.Fatalf("survivor %d corrupted by retention", i)
			}
			found++
		}
	}
	if found != s.Len() {
		t.Fatalf("index count %d disagrees with Get survivors %d", s.Len(), found)
	}
	if found >= 64 {
		t.Fatal("eviction removed no results")
	}
	if err := s.Put(testKey(100), testMet(100)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(testKey(100)); !ok {
		t.Fatal("store not writable after retention")
	}
}

// TestRetentionDisabledByDefault: MaxBytes 0 must not evict.
func TestRetentionDisabledByDefault(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Fingerprint: "fp-a"})
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, s, 32)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s, err = Open(dir, Options{Fingerprint: "fp-a"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.Len(); got != 32 {
		t.Fatalf("unbounded reopen holds %d results, want 32", got)
	}
}

// TestRetentionEvictsAgedSegments pins the MaxAge policy: reopening with an
// age bound deletes every segment whose mtime is older than the bound —
// regardless of size — keeps the fresh ones intact, and leaves the store
// writable. Age retention composes with MaxBytes (the age pass runs first).
func TestRetentionEvictsAgedSegments(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Fingerprint: "fp-a"})
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, s, 64)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(segs)
	if len(segs) != DefaultPartitions {
		t.Fatalf("found %d segments, want %d", len(segs), DefaultPartitions)
	}
	// Age the first half of the segments beyond the bound; keep the rest
	// fresh. Record pre-retention sizes so naturally empty partitions do
	// not read as evictions.
	old := time.Now().Add(-48 * time.Hour)
	aged := map[string]bool{}
	sizes := map[string]int64{}
	for i, p := range segs {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		sizes[p] = fi.Size()
		if i < len(segs)/2 {
			if err := os.Chtimes(p, old, old); err != nil {
				t.Fatal(err)
			}
			aged[p] = true
		}
	}

	s, err = Open(dir, Options{Fingerprint: "fp-a", MaxAge: 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	for _, p := range segs {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if aged[p] && fi.Size() > 0 {
			t.Fatalf("aged segment %s survived the age bound", p)
		}
		if !aged[p] && fi.Size() != sizes[p] {
			t.Fatalf("fresh segment %s changed by the age bound: %d -> %d bytes", p, sizes[p], fi.Size())
		}
	}

	// Survivors still serve correct values; evicted keys merely miss.
	found := 0
	for i := 0; i < 64; i++ {
		if met, ok := s.Get(testKey(i)); ok {
			if met != testMet(i) {
				t.Fatalf("survivor %d corrupted by age retention", i)
			}
			found++
		}
	}
	if found == 0 || found >= 64 {
		t.Fatalf("age retention kept %d of 64 results, want a strict subset", found)
	}
	if found != s.Len() {
		t.Fatalf("index count %d disagrees with Get survivors %d", s.Len(), found)
	}
	if err := s.Put(testKey(200), testMet(200)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(testKey(200)); !ok {
		t.Fatal("store not writable after age retention")
	}
}

// TestRetentionAgeDisabledByDefault: MaxAge 0 must not evict, however old
// the segments are.
func TestRetentionAgeDisabledByDefault(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Fingerprint: "fp-a"})
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, s, 32)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	ancient := time.Now().Add(-1000 * time.Hour)
	for _, p := range segs {
		if err := os.Chtimes(p, ancient, ancient); err != nil {
			t.Fatal(err)
		}
	}
	s, err = Open(dir, Options{Fingerprint: "fp-a"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.Len(); got != 32 {
		t.Fatalf("unbounded reopen holds %d results, want 32", got)
	}
}
