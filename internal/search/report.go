package search

import "optima/internal/dse"

// FrontPoint is the machine-readable view of one Pareto-front member, in
// the paper's reporting units (ns, V, LSB, fJ) — the JSON/CSV schema of the
// `optima search` report.
type FrontPoint struct {
	Tau0NS   float64 `json:"tau0_ns"`
	VDAC0V   float64 `json:"vdac0_v"`
	VDACFSV  float64 `json:"vdacfs_v"`
	EpsMul   float64 `json:"eps_mul_lsb"`
	EMulFJ   float64 `json:"e_mul_fj"`
	FOM      float64 `json:"fom"`
	SigmaLSB float64 `json:"sigma_max_lsb"`
}

// FrontPoints converts front metrics into report points, preserving order.
func FrontPoints(front []dse.Metrics) []FrontPoint {
	out := make([]FrontPoint, len(front))
	for i, m := range front {
		out[i] = FrontPoint{
			Tau0NS:   m.Config.Tau0 * 1e9,
			VDAC0V:   m.Config.VDAC0,
			VDACFSV:  m.Config.VDACFS,
			EpsMul:   m.EpsMul,
			EMulFJ:   m.EMul * 1e15,
			FOM:      m.FOM(),
			SigmaLSB: m.SigmaMaxLSB,
		}
	}
	return out
}
