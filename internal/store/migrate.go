package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"optima/internal/engine"
)

// Read-compat migration from format v1 (JSONL segments) to format v2
// (binary records, codec.go). Open triggers it when the directory's
// manifest declares version 1, or when legacy seg-NN.jsonl files exist
// under a missing/torn manifest; the migrated directory then opens through
// the normal v2 path and its manifest is rewritten as version 2. A v1
// store is therefore served transparently — same keys, same values, zero
// re-evaluation — the first open just pays one decode+rewrite pass.
//
// The migration is crash-tolerant and idempotent: each segment converts
// via write-then-rename, the JSONL file is removed only after its binary
// replacement is durable, and a partially migrated directory (manifest
// still v1, some segments already converted) simply resumes — converted
// segments are skipped because their .jsonl source is gone.

// v1Record mirrors one v1 JSONL line. The JSON shape is frozen: it is the
// on-disk format every pre-v2 store wrote.
type v1Record struct {
	FP  string         `json:"fp"`
	Key engine.Key     `json:"key"`
	Met engine.Metrics `json:"met"`
}

// v1SegmentGlob matches the legacy segment files of a directory.
const v1SegmentGlob = "seg-*.jsonl"

// hasV1Segments reports whether dir still holds legacy JSONL segments.
func hasV1Segments(dir string) bool {
	paths, err := filepath.Glob(filepath.Join(dir, v1SegmentGlob))
	return err == nil && len(paths) > 0
}

// migrateV1 converts every legacy segment of dir to the v2 codec, in
// deterministic (file-name) order, and reports how many segments it
// converted.
func migrateV1(dir string) (int, error) {
	paths, err := filepath.Glob(filepath.Join(dir, v1SegmentGlob))
	if err != nil {
		return 0, fmt.Errorf("store: migrate: %w", err)
	}
	sort.Strings(paths)
	for i, path := range paths {
		if err := migrateV1Segment(path); err != nil {
			return i, err
		}
	}
	return len(paths), nil
}

// migrateV1Segment rewrites one JSONL segment as a v2 binary segment next
// to it (same partition number, .seg suffix) and removes the original.
//
// The decode keeps v1's torn-tail semantics: the valid prefix of the file
// is migrated, anything after the first unparsable line is dropped. Unlike
// ordinary compaction, records of EVERY fingerprint survive — a shared
// cache directory serving several calibrations loses nothing to the format
// upgrade; superseded values are still collapsed to the latest per
// (fingerprint, key). The segment's modification time carries over so the
// age/LRU retention passes judge the migrated file by its data's age, not
// the migration's.
func migrateV1Segment(path string) error {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil // already migrated (resumed partial migration)
	}
	if err != nil {
		return fmt.Errorf("store: migrate: %w", err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		return fmt.Errorf("store: migrate: %w", err)
	}

	type fpKey struct {
		fp  string
		key engine.Key
	}
	var order []fpKey
	latest := map[fpKey]engine.Metrics{}
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			break // torn tail: valid prefix only, as in the v1 loader
		}
		line := data[:nl]
		data = data[nl+1:]
		var rec v1Record
		if json.Unmarshal(line, &rec) != nil || !validMetrics(rec.Met) {
			break
		}
		k := fpKey{fp: rec.FP, key: rec.Key}
		if _, seen := latest[k]; !seen {
			order = append(order, k)
		}
		latest[k] = rec.Met
	}

	var buf []byte
	for _, k := range order {
		buf = appendRecord(buf, record{FP: k.fp, Key: k.key, Met: latest[k]})
	}
	out := strings.TrimSuffix(path, ".jsonl") + segSuffix
	if len(buf) > 0 {
		tmp := out + ".tmp"
		f, err := os.Create(tmp)
		if err != nil {
			return fmt.Errorf("store: migrate: %w", err)
		}
		if _, err := f.Write(buf); err == nil {
			err = f.Sync()
		}
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("store: migrate: %w", err)
		}
		if err := f.Close(); err != nil {
			os.Remove(tmp)
			return fmt.Errorf("store: migrate: %w", err)
		}
		if err := os.Rename(tmp, out); err != nil {
			os.Remove(tmp)
			return fmt.Errorf("store: migrate: %w", err)
		}
		// Preserve the data's age for the retention passes; best-effort.
		_ = os.Chtimes(out, fi.ModTime(), fi.ModTime())
	}
	if err := os.Remove(path); err != nil {
		return fmt.Errorf("store: migrate: %w", err)
	}
	return nil
}
