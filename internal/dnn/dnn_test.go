package dnn

import (
	"math"
	"path/filepath"
	"sync"
	"testing"

	"optima/internal/stats"
)

func TestTensorIndexing(t *testing.T) {
	x := NewTensor(2, 3, 4, 5)
	x.Set(1, 2, 3, 4, 42)
	if got := x.At(1, 2, 3, 4); got != 42 {
		t.Fatalf("At = %g", got)
	}
	if x.Len() != 2*3*4*5 || x.FeatureLen() != 3*4*5 {
		t.Fatal("length helpers wrong")
	}
	if x.Idx(1, 0, 0, 0) != x.FeatureLen() {
		t.Fatal("sample stride wrong")
	}
	s := x.Sample(1)
	if s.N != 1 || s.At(0, 2, 3, 4) != 42 {
		t.Fatal("Sample copy wrong")
	}
	c := x.Clone()
	c.Data[0] = 7
	if x.Data[0] == 7 {
		t.Fatal("Clone aliases data")
	}
}

func TestTensorBadShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTensor(0, 1, 1, 1)
}

// numericalGradCheck compares analytic parameter gradients of a tiny
// network against central finite differences.
func numericalGradCheck(t *testing.T, net *Network, x *Tensor, labels []int, tol float64) {
	t.Helper()
	logits := net.Forward(x, true)
	_, grad := CrossEntropyLoss(logits, labels)
	net.Backward(grad)

	lossAt := func() float64 {
		logits := net.Forward(x, true)
		l, _ := CrossEntropyLoss(logits, labels)
		return l
	}
	const h = 1e-5
	for _, p := range net.Params() {
		// Check a few entries of each parameter.
		step := len(p.W)/5 + 1
		for i := 0; i < len(p.W); i += step {
			orig := p.W[i]
			p.W[i] = orig + h
			up := lossAt()
			p.W[i] = orig - h
			down := lossAt()
			p.W[i] = orig
			numeric := (up - down) / (2 * h)
			if math.Abs(numeric-p.G[i]) > tol*(1+math.Abs(numeric)) {
				t.Errorf("%s[%d]: analytic %g vs numeric %g", p.Name, i, p.G[i], numeric)
			}
		}
	}
}

func TestConvGradients(t *testing.T) {
	rng := stats.NewRNG(1)
	net := NewNetwork("g", 2, 4, 4)
	net.Add(NewConv2D("c", 2, 3, 3, rng))
	net.Add(NewGlobalAvgPool("gap"))
	net.Add(NewDense("fc", 3, 2, rng))
	x := randomTensor(rng, 2, 2, 4, 4)
	numericalGradCheck(t, net, x, []int{0, 1}, 1e-4)
}

func TestDenseReLUGradients(t *testing.T) {
	rng := stats.NewRNG(2)
	net := NewNetwork("g", 3, 1, 1)
	net.Add(NewDense("fc1", 3, 5, rng))
	net.Add(NewReLU("r"))
	net.Add(NewDense("fc2", 5, 2, rng))
	x := randomTensor(rng, 3, 3, 1, 1)
	numericalGradCheck(t, net, x, []int{0, 1, 0}, 1e-4)
}

func TestMaxPoolGradients(t *testing.T) {
	rng := stats.NewRNG(3)
	net := NewNetwork("g", 1, 4, 4)
	net.Add(NewConv2D("c", 1, 2, 3, rng))
	net.Add(NewMaxPool2("p"))
	net.Add(NewGlobalAvgPool("gap"))
	net.Add(NewDense("fc", 2, 2, rng))
	x := randomTensor(rng, 2, 1, 4, 4)
	numericalGradCheck(t, net, x, []int{1, 0}, 1e-4)
}

func TestBatchNormGradients(t *testing.T) {
	rng := stats.NewRNG(4)
	net := NewNetwork("g", 2, 3, 3)
	net.Add(NewConv2D("c", 2, 3, 3, rng))
	net.Add(NewBatchNorm2D("bn", 3))
	net.Add(NewReLU("r"))
	net.Add(NewGlobalAvgPool("gap"))
	net.Add(NewDense("fc", 3, 2, rng))
	x := randomTensor(rng, 4, 2, 3, 3)
	numericalGradCheck(t, net, x, []int{0, 1, 1, 0}, 2e-4)
}

func TestResidualGradients(t *testing.T) {
	rng := stats.NewRNG(5)
	net := NewNetwork("g", 2, 3, 3)
	net.Add(NewResidual("res", 2, 4, rng))
	net.Add(NewGlobalAvgPool("gap"))
	net.Add(NewDense("fc", 4, 2, rng))
	x := randomTensor(rng, 3, 2, 3, 3)
	numericalGradCheck(t, net, x, []int{0, 1, 1}, 2e-4)
}

func TestSoftmaxRows(t *testing.T) {
	logits := NewTensor(2, 3, 1, 1)
	copy(logits.Data, []float64{1, 2, 3, 1000, 1000, 1000})
	p := Softmax(logits)
	var sum float64
	for i := 0; i < 3; i++ {
		sum += p.Data[i]
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("softmax row sum %g", sum)
	}
	// Large logits must not overflow (max subtraction).
	for i := 3; i < 6; i++ {
		if math.Abs(p.Data[i]-1.0/3) > 1e-9 {
			t.Fatalf("uniform logits give %g", p.Data[i])
		}
	}
}

func TestCrossEntropyKnownValue(t *testing.T) {
	logits := NewTensor(1, 2, 1, 1)
	copy(logits.Data, []float64{0, 0})
	loss, grad := CrossEntropyLoss(logits, []int{0})
	if math.Abs(loss-math.Ln2) > 1e-12 {
		t.Fatalf("loss = %g, want ln 2", loss)
	}
	if math.Abs(grad.Data[0]+0.5) > 1e-12 || math.Abs(grad.Data[1]-0.5) > 1e-12 {
		t.Fatalf("grad = %v", grad.Data)
	}
}

func TestTrainingReducesLossAndFits(t *testing.T) {
	rng := stats.NewRNG(6)
	// Tiny linearly separable task.
	n := 60
	x := NewTensor(n, 2, 1, 1)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		cls := i % 2
		x.Data[i*2] = rng.Gaussian(float64(cls)*2-1, 0.3)
		x.Data[i*2+1] = rng.Gaussian(float64(cls)*2-1, 0.3)
		labels[i] = cls
	}
	net := NewNetwork("toy", 2, 1, 1)
	net.Add(NewDense("fc1", 2, 8, rng))
	net.Add(NewReLU("r"))
	net.Add(NewDense("fc2", 8, 2, rng))
	cfg := TrainConfig{Epochs: 30, BatchSize: 16, LR: 0.1, Momentum: 0.9, Seed: 3}
	loss, err := net.Fit(x, labels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if loss > 0.1 {
		t.Fatalf("final loss %g, want < 0.1", loss)
	}
	top1, _ := net.TopKAccuracy(x, labels, 2)
	if top1 < 95 {
		t.Fatalf("train accuracy %g%%, want ≥ 95%%", top1)
	}
}

func TestZooModels(t *testing.T) {
	rng := stats.NewRNG(7)
	macs := map[string]int64{}
	for _, name := range ZooModels() {
		net, err := NewZooModel(name, 3, 12, 12, 10, rng)
		if err != nil {
			t.Fatal(err)
		}
		x := randomTensor(rng, 2, 3, 12, 12)
		logits := net.Forward(x, false)
		if logits.FeatureLen() != 10 || logits.N != 2 {
			t.Fatalf("%s logits shape %s", name, logits.Shape())
		}
		macs[name] = net.MACsPerInference()
		if macs[name] <= 0 {
			t.Fatalf("%s MAC count %d", name, macs[name])
		}
		if net.NumParams() <= 0 {
			t.Fatalf("%s has no parameters", name)
		}
	}
	// Structural contrasts from the paper: deeper variants do more MACs.
	if macs["VGG19S"] <= macs["VGG16S"] {
		t.Fatal("VGG19S must be heavier than VGG16S")
	}
	if macs["ResNet101S"] <= macs["ResNet50S"] {
		t.Fatal("ResNet101S must be heavier than ResNet50S")
	}
	if _, err := NewZooModel("nope", 3, 12, 12, 10, rng); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestBatchNormFolding(t *testing.T) {
	rng := stats.NewRNG(8)
	net := NewNetwork("fold", 2, 5, 5)
	net.Add(NewConv2D("c", 2, 3, 3, rng))
	net.Add(NewBatchNorm2D("bn", 3))
	net.Add(NewReLU("r"))
	net.Add(NewGlobalAvgPool("gap"))
	net.Add(NewDense("fc", 3, 2, rng))
	// Train briefly so the running stats are non-trivial.
	x := randomTensor(rng, 8, 2, 5, 5)
	labels := []int{0, 1, 0, 1, 0, 1, 0, 1}
	if _, err := net.Fit(x, labels, TrainConfig{Epochs: 3, BatchSize: 4, LR: 0.05, Momentum: 0.9, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	before := net.Forward(x, false)
	if err := net.FoldAllBatchNorms(); err != nil {
		t.Fatal(err)
	}
	after := net.Forward(x, false)
	for i := range before.Data {
		if math.Abs(before.Data[i]-after.Data[i]) > 1e-9 {
			t.Fatalf("folding changed inference: %g vs %g", before.Data[i], after.Data[i])
		}
	}
}

func TestResidualFolding(t *testing.T) {
	rng := stats.NewRNG(9)
	net := NewNetwork("foldres", 2, 4, 4)
	net.Add(NewResidual("res", 2, 3, rng))
	net.Add(NewGlobalAvgPool("gap"))
	net.Add(NewDense("fc", 3, 2, rng))
	x := randomTensor(rng, 6, 2, 4, 4)
	labels := []int{0, 1, 0, 1, 0, 1}
	if _, err := net.Fit(x, labels, TrainConfig{Epochs: 3, BatchSize: 3, LR: 0.05, Momentum: 0.9, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	before := net.Forward(x, false)
	if err := net.FoldAllBatchNorms(); err != nil {
		t.Fatal(err)
	}
	after := net.Forward(x, false)
	for i := range before.Data {
		if math.Abs(before.Data[i]-after.Data[i]) > 1e-9 {
			t.Fatalf("residual folding changed inference")
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := stats.NewRNG(10)
	build := func() *Network {
		r := stats.NewRNG(10)
		net := NewNetwork("sl", 2, 4, 4)
		net.Add(NewConv2D("c", 2, 3, 3, r))
		net.Add(NewBatchNorm2D("bn", 3))
		net.Add(NewGlobalAvgPool("gap"))
		net.Add(NewDense("fc", 3, 2, r))
		return net
	}
	net := build()
	x := randomTensor(rng, 4, 2, 4, 4)
	if _, err := net.Fit(x, []int{0, 1, 0, 1}, TrainConfig{Epochs: 2, BatchSize: 2, LR: 0.05, Momentum: 0.9, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "net.gob")
	if err := net.Save(path); err != nil {
		t.Fatal(err)
	}
	restored := build()
	if err := restored.Load(path); err != nil {
		t.Fatal(err)
	}
	want := net.Forward(x, false)
	got := restored.Forward(x, false)
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatal("round-trip changed inference")
		}
	}
}

func TestReplaceHead(t *testing.T) {
	rng := stats.NewRNG(11)
	net, err := NewZooModel("VGG16S", 3, 12, 12, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.ReplaceHead(10, rng); err != nil {
		t.Fatal(err)
	}
	x := randomTensor(rng, 1, 3, 12, 12)
	if got := net.Forward(x, false).FeatureLen(); got != 10 {
		t.Fatalf("new head outputs %d classes, want 10", got)
	}
}

func TestFreezeAllButLast(t *testing.T) {
	rng := stats.NewRNG(12)
	net := NewNetwork("tl", 2, 1, 1)
	net.Add(NewDense("fc1", 2, 4, rng))
	net.Add(NewReLU("r"))
	net.Add(NewDense("fc2", 4, 2, rng))
	frozen := append([]float64(nil), net.Layers[0].Params()[0].W...)
	x := randomTensor(rng, 8, 2, 1, 1)
	labels := []int{0, 1, 0, 1, 0, 1, 0, 1}
	cfg := TrainConfig{Epochs: 3, BatchSize: 4, LR: 0.1, Momentum: 0.9, Seed: 1, FreezeAllButLast: true}
	if _, err := net.Fit(x, labels, cfg); err != nil {
		t.Fatal(err)
	}
	for i, v := range net.Layers[0].Params()[0].W {
		if v != frozen[i] {
			t.Fatal("frozen layer changed during transfer learning")
		}
	}
}

func TestEvalTopK(t *testing.T) {
	// Classifier that always ranks class 1 first, class 0 second.
	forward := func(b *Tensor) *Tensor {
		out := NewTensor(b.N, 3, 1, 1)
		for n := 0; n < b.N; n++ {
			out.Data[n*3+0] = 1
			out.Data[n*3+1] = 2
			out.Data[n*3+2] = 0
		}
		return out
	}
	x := NewTensor(4, 1, 1, 1)
	top1, top2 := EvalTopK(forward, x, []int{1, 1, 0, 2}, 2, 2)
	if top1 != 50 {
		t.Fatalf("top1 = %g, want 50", top1)
	}
	if top2 != 75 {
		t.Fatalf("top2 = %g, want 75", top2)
	}
}

func randomTensor(rng *stats.RNG, n, c, h, w int) *Tensor {
	x := NewTensor(n, c, h, w)
	for i := range x.Data {
		x.Data[i] = rng.Gaussian(0, 1)
	}
	return x
}

// TestInferMatchesForward pins the stateless inference path against the
// training forward in eval mode, across every built-in layer type (the zoo
// covers conv, batch-norm, ReLU, pooling, residual blocks and dense heads).
func TestInferMatchesForward(t *testing.T) {
	rng := stats.NewRNG(11)
	for _, name := range ZooModels() {
		net, err := NewZooModel(name, 3, 12, 12, 10, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !net.StatelessOnly() {
			t.Fatalf("%s has a layer without a stateless forward", name)
		}
		x := randomTensor(rng, 3, 3, 12, 12)
		want := net.Forward(x, false)
		got := net.Infer(x)
		if len(got.Data) != len(want.Data) {
			t.Fatalf("%s: shape mismatch %s vs %s", name, got.Shape(), want.Shape())
		}
		for i := range want.Data {
			if math.Abs(got.Data[i]-want.Data[i]) > 1e-12 {
				t.Fatalf("%s: Infer diverges from Forward at %d: %g vs %g",
					name, i, got.Data[i], want.Data[i])
			}
		}
	}
}

// TestConcurrentInferRaceFree runs parallel Infer calls on one network
// under -race: the split of inference from training state is exactly what
// makes this legal.
func TestConcurrentInferRaceFree(t *testing.T) {
	rng := stats.NewRNG(12)
	net, err := NewZooModel("ResNet50S", 3, 12, 12, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := randomTensor(rng, 2, 3, 12, 12)
	want := net.Infer(x)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := net.Infer(x)
			for i := range want.Data {
				if got.Data[i] != want.Data[i] {
					t.Errorf("concurrent Infer diverged at %d", i)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestTopKAccuracyWorkerInvariance: the parallel evaluation path must give
// the exact same accuracies as a serial pass.
func TestTopKAccuracyWorkerInvariance(t *testing.T) {
	rng := stats.NewRNG(13)
	net, err := NewZooModel("VGG16S", 3, 12, 12, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := randomTensor(rng, 70, 3, 12, 12)
	labels := make([]int, 70)
	for i := range labels {
		labels[i] = int(rng.Uint64() % 4)
	}
	net.EvalWorkers = 1
	s1, sk := net.TopKAccuracy(x, labels, 2)
	net.EvalWorkers = 8
	p1, pk := net.TopKAccuracy(x, labels, 2)
	if s1 != p1 || sk != pk {
		t.Fatalf("worker count changed the result: serial (%g, %g) vs parallel (%g, %g)", s1, sk, p1, pk)
	}
}
