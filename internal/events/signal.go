package events

// Signal is an analog-valued net in the event-based simulation: a float64
// value with change timestamps and optional watchers, mirroring the
// value-change semantics of an HDL real-valued signal.
type Signal struct {
	sim      *Simulator
	name     string
	value    float64
	lastEdge Time
	watchers []func(old, new float64)
	trace    *Trace
}

// NewSignal creates a named signal with an initial value on the simulator.
func NewSignal(sim *Simulator, name string, initial float64) *Signal {
	return &Signal{sim: sim, name: name, value: initial}
}

// Name returns the signal's name.
func (s *Signal) Name() string { return s.name }

// Value returns the current value.
func (s *Signal) Value() float64 { return s.value }

// LastEdge returns the time of the most recent value change.
func (s *Signal) LastEdge() Time { return s.lastEdge }

// Set assigns a new value at the current simulation time, notifying
// watchers and the trace if the value changed.
func (s *Signal) Set(v float64) {
	if v == s.value {
		return
	}
	old := s.value
	s.value = v
	s.lastEdge = s.sim.Now()
	if s.trace != nil {
		s.trace.record(s.lastEdge, v)
	}
	for _, w := range s.watchers {
		w(old, v)
	}
}

// Watch registers a callback invoked on every value change.
func (s *Signal) Watch(fn func(old, new float64)) {
	s.watchers = append(s.watchers, fn)
}

// EnableTrace starts recording (time, value) pairs, including the current
// value as the first point, and returns the trace.
func (s *Signal) EnableTrace() *Trace {
	s.trace = &Trace{}
	s.trace.record(s.sim.Now(), s.value)
	return s.trace
}

// Trace is a recorded value-change history of one signal.
type Trace struct {
	Times  []Time
	Values []float64
}

func (t *Trace) record(at Time, v float64) {
	t.Times = append(t.Times, at)
	t.Values = append(t.Values, v)
}

// Len returns the number of recorded changes.
func (t *Trace) Len() int { return len(t.Times) }

// ValueAt returns the signal value in effect at time at (the most recent
// change not after at), or the first recorded value for earlier times.
func (t *Trace) ValueAt(at Time) float64 {
	if len(t.Times) == 0 {
		return 0
	}
	lo, hi := 0, len(t.Times)
	for lo < hi {
		mid := (lo + hi) / 2
		if t.Times[mid] <= at {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return t.Values[0]
	}
	return t.Values[lo-1]
}
