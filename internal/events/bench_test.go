package events

import "testing"

func BenchmarkScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sim := NewSimulator()
		for j := 0; j < 16; j++ {
			if _, err := sim.Schedule(Time(j)*Picosecond, func() {}); err != nil {
				b.Fatal(err)
			}
		}
		sim.Run()
	}
}
