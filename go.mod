module optima

go 1.24
