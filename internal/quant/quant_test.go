package quant

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"optima/internal/core"
	"optima/internal/dataset"
	"optima/internal/device"
	"optima/internal/dnn"
	"optima/internal/mult"
	"optima/internal/stats"
)

var (
	fixtureOnce  sync.Once
	fixtureModel *core.Model
	fixtureErr   error
)

func testModel(t *testing.T) *core.Model {
	t.Helper()
	fixtureOnce.Do(func() {
		fixtureModel, fixtureErr = core.Calibrate(core.QuickCalibration())
	})
	if fixtureErr != nil {
		t.Fatalf("calibration fixture: %v", fixtureErr)
	}
	return fixtureModel
}

func TestExactMultiplier(t *testing.T) {
	var e Exact
	if e.Mul(7, -3) != -21 || e.Mul(15, 7) != 105 || e.Mul(0, 5) != 0 {
		t.Fatal("exact multiplier wrong")
	}
}

func TestWeightQuantizationRoundTrip(t *testing.T) {
	w := []float64{-0.7, -0.35, 0, 0.1, 0.7}
	q := QuantizeWeights(w)
	if q.Scale <= 0 {
		t.Fatal("non-positive scale")
	}
	for i, v := range w {
		back := float64(q.Codes[i]) * q.Scale
		if math.Abs(back-v) > q.Scale/2+1e-12 {
			t.Fatalf("weight %g → code %d → %g (scale %g)", v, q.Codes[i], back, q.Scale)
		}
		if q.Codes[i] > WeightMax || q.Codes[i] < -WeightMax {
			t.Fatalf("code %d out of int4 range", q.Codes[i])
		}
	}
	// The max-magnitude weight must map to ±7.
	if q.Codes[0] != -7 || q.Codes[4] != 7 {
		t.Fatalf("extremes map to %d, %d", q.Codes[0], q.Codes[4])
	}
}

func TestActQuantRoundTrip(t *testing.T) {
	q := calibrate(0, 3.0)
	if q.Zero != 0 {
		t.Fatalf("ReLU range zero point = %d, want 0", q.Zero)
	}
	for _, x := range []float64{0, 0.5, 1.5, 3.0} {
		c := q.Quantize(x)
		if c > ActMax {
			t.Fatalf("code %d out of range", c)
		}
		if math.Abs(q.Dequantize(c)-x) > q.Scale/2+1e-12 {
			t.Fatalf("x=%g → %d → %g", x, c, q.Dequantize(c))
		}
	}
	if q.Quantize(-1) != 0 || q.Quantize(99) != ActMax {
		t.Fatal("clamping broken")
	}
	// Signed range gets a zero point and zero stays exact.
	qs := calibrate(-1, 2)
	if qs.Zero == 0 {
		t.Fatal("signed range needs a zero point")
	}
	if got := qs.Dequantize(qs.Quantize(0)); math.Abs(got) > 1e-12 {
		t.Fatalf("zero not exactly representable: %g", got)
	}
}

// Property: quantize→dequantize error is bounded by half a step.
func TestActQuantErrorBoundProperty(t *testing.T) {
	q := calibrate(0, 5)
	f := func(raw uint16) bool {
		x := float64(raw) / 65535 * 5
		back := q.Dequantize(q.Quantize(x))
		return math.Abs(back-x) <= q.Scale/2+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func tinyTrainedNet(t *testing.T) (*dnn.Network, *dnn.Tensor, []int) {
	t.Helper()
	rng := stats.NewRNG(21)
	cfg := dataset.Config{Name: "tiny", Classes: 4, TrainPerCls: 40, TestPerCls: 10, Noise: 0.05, Seed: 9}
	ds, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	net := dnn.NewNetwork("tiny", dataset.Channels, dataset.Height, dataset.Width)
	net.Add(dnn.NewConv2D("c1", 3, 6, 3, rng))
	net.Add(dnn.NewBatchNorm2D("bn1", 6))
	net.Add(dnn.NewReLU("r1"))
	net.Add(dnn.NewMaxPool2("p1"))
	net.Add(dnn.NewGlobalAvgPool("gap"))
	net.Add(dnn.NewDense("fc", 6, 4, rng))
	tc := dnn.TrainConfig{Epochs: 6, BatchSize: 16, LR: 0.08, Momentum: 0.9, Seed: 4}
	if _, err := net.Fit(ds.Train, ds.TrainY, tc); err != nil {
		t.Fatal(err)
	}
	return net, ds.Test, ds.TestY
}

func TestQuantizedNetworkCloseToFloat(t *testing.T) {
	net, test, testY := tinyTrainedNet(t)
	fTop1, _ := net.TopKAccuracy(test, testY, 2)
	calib := test.Sample(0)
	for i := 1; i < 16; i++ {
		s := test.Sample(i)
		grown := dnn.NewTensor(i+1, s.C, s.H, s.W)
		copy(grown.Data, calib.Data)
		copy(grown.Data[i*s.FeatureLen():], s.Data)
		calib = grown
	}
	qnet, err := Quantize(net, calib)
	if err != nil {
		t.Fatal(err)
	}
	qTop1, _ := qnet.TopKAccuracy(test, testY, 2)
	if fTop1-qTop1 > 20 {
		t.Fatalf("INT4 dropped %g%% → %g%%", fTop1, qTop1)
	}
}

func TestQuantizedExactVsInMemoryDeterministic(t *testing.T) {
	net, test, testY := tinyTrainedNet(t)
	calib := dnn.NewTensor(16, test.C, test.H, test.W)
	copy(calib.Data, test.Data[:calib.Len()])
	qnet, err := Quantize(net, calib)
	if err != nil {
		t.Fatal(err)
	}
	exactTop1, _ := qnet.TopKAccuracy(test, testY, 2)

	m := testModel(t)
	b, err := mult.NewBehavioral(m, mult.Config{Tau0: 0.16e-9, VDAC0: 0.3, VDACFS: 1.0}, device.Nominal())
	if err != nil {
		t.Fatal(err)
	}
	im, err := NewInMemory(b, nil)
	if err != nil {
		t.Fatal(err)
	}
	qnet.Mult = im
	fomTop1, _ := qnet.TopKAccuracy(test, testY, 2)
	if exactTop1-fomTop1 > 25 {
		t.Fatalf("fom corner dropped too much: %g%% → %g%%", exactTop1, fomTop1)
	}
	if im.Ops() == 0 {
		t.Fatal("in-memory multiplier was never used")
	}
}

func TestInMemoryLUTProperties(t *testing.T) {
	m := testModel(t)
	b, err := mult.NewBehavioral(m, mult.Config{Tau0: 0.16e-9, VDAC0: 0.3, VDACFS: 1.0}, device.Nominal())
	if err != nil {
		t.Fatal(err)
	}
	im, err := NewInMemory(b, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Sign symmetry.
	for a := uint8(0); a <= 15; a += 5 {
		for w := int8(1); w <= 7; w += 3 {
			if im.Mul(a, w) != -im.Mul(a, -w) {
				t.Fatalf("sign asymmetry at (%d,%d)", a, w)
			}
		}
	}
	// Zero weight gives exactly zero.
	if im.Mul(9, 0) != 0 {
		t.Fatal("zero weight must produce 0")
	}
	// Deterministic mode: repeated calls agree.
	if im.Mul(7, 5) != im.Mul(7, 5) {
		t.Fatal("deterministic LUT not deterministic")
	}
	// Transfer approximates the product.
	for a := uint8(1); a <= 15; a += 2 {
		for w := int8(1); w <= 7; w += 2 {
			got := im.Mul(a, w)
			want := int32(a) * int32(w)
			if diff := got - want; diff < -12 || diff > 12 {
				t.Fatalf("Mul(%d,%d) = %d, want ≈%d", a, w, got, want)
			}
		}
	}
}

func TestInMemoryNoiseMode(t *testing.T) {
	m := testModel(t)
	b, err := mult.NewBehavioral(m, mult.Config{Tau0: 0.16e-9, VDAC0: 0.3, VDACFS: 1.0}, device.Nominal())
	if err != nil {
		t.Fatal(err)
	}
	im, err := NewInMemory(b, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	var acc stats.Accumulator
	for i := 0; i < 500; i++ {
		acc.Add(float64(im.Mul(10, 5)))
	}
	if acc.StdDev() == 0 {
		t.Fatal("noisy LUT produced no spread")
	}
	if math.Abs(acc.Mean()-50) > 6 {
		t.Fatalf("noisy mean %g far from 50", acc.Mean())
	}
}

func TestCountQuantMACs(t *testing.T) {
	net, test, _ := tinyTrainedNet(t)
	calib := dnn.NewTensor(8, test.C, test.H, test.W)
	copy(calib.Data, test.Data[:calib.Len()])
	qnet, err := Quantize(net, calib)
	if err != nil {
		t.Fatal(err)
	}
	macs, err := qnet.CountQuantMACs(test.Sample(0))
	if err != nil {
		t.Fatal(err)
	}
	if macs <= 0 {
		t.Fatalf("MAC count %d", macs)
	}
	if _, err := qnet.CountQuantMACs(test); err == nil {
		t.Fatal("batch input accepted for MAC counting")
	}
}

func TestQATFineTuneImprovesOrKeepsInt4(t *testing.T) {
	net, test, testY := tinyTrainedNet(t)
	rng := stats.NewRNG(77)
	// Build training data for the fine-tune from the same distribution.
	cfg := dataset.Config{Name: "tiny", Classes: 4, TrainPerCls: 40, TestPerCls: 10, Noise: 0.05, Seed: 9}
	ds, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_ = rng
	if err := QATFineTune(net, ds.Train, ds.TrainY, DefaultQATConfig()); err != nil {
		t.Fatal(err)
	}
	calib := dnn.NewTensor(16, test.C, test.H, test.W)
	copy(calib.Data, test.Data[:calib.Len()])
	qnet, err := Quantize(net, calib)
	if err != nil {
		t.Fatal(err)
	}
	top1, _ := qnet.TopKAccuracy(test, testY, 2)
	if top1 < 50 {
		t.Fatalf("post-QAT INT4 accuracy %g%% too low", top1)
	}
}
