package engine

import (
	"context"
	"errors"
	"sync"
	"testing"

	"optima/internal/device"
	"optima/internal/mult"
)

// gateBackend blocks every evaluation on a release gate and signals the
// first start, so tests can cancel a batch while work is verifiably in
// flight.
type gateBackend struct {
	fakeBackend
	started chan struct{} // one buffered token per evaluation start
	release chan struct{} // closed to let evaluations finish
}

func newGateBackend() *gateBackend {
	return &gateBackend{
		started: make(chan struct{}, 64),
		release: make(chan struct{}),
	}
}

func (g *gateBackend) Evaluate(cfg mult.Config, cond device.PVT) (Metrics, error) {
	select {
	case g.started <- struct{}{}:
	default:
	}
	<-g.release
	return g.fakeBackend.Evaluate(cfg, cond)
}

// TestEvaluateBatchCancellation exercises the contract a canceled server
// job depends on: in-flight evaluations complete and stay cached,
// unstarted ones are abandoned WITHOUT memoizing the cancellation, and a
// rerun finishes the remainder — every corner evaluated exactly once
// across both runs.
func TestEvaluateBatchCancellation(t *testing.T) {
	gate := newGateBackend()
	eng := New(gate, 2)
	jobs := testJobs(12)

	ctx, cancel := context.WithCancel(context.Background())
	type outcome struct {
		mets []Metrics
		err  error
	}
	res := make(chan outcome, 1)
	go func() {
		mets, err := eng.EvaluateBatchOpts(jobs, BatchOptions{Ctx: ctx})
		res <- outcome{mets, err}
	}()

	<-gate.started // at least one evaluation is on the backend
	cancel()
	close(gate.release)
	out := <-res
	if !errors.Is(out.err, context.Canceled) {
		t.Fatalf("canceled batch returned %v, want context.Canceled", out.err)
	}

	ran := gate.evals.Load()
	if ran < 1 || ran >= 12 {
		t.Fatalf("canceled batch ran %d evaluations, want some but not all of 12", ran)
	}
	st := eng.Stats()
	if st.Misses != uint64(ran) {
		t.Fatalf("misses %d after cancellation, want %d (only jobs that ran)", st.Misses, ran)
	}
	if st.Entries != int(ran) {
		t.Fatalf("%d cache entries after cancellation, want %d — abandoned claims must be released", st.Entries, ran)
	}

	// The rerun must not see memoized cancellations: it completes, serving
	// finished work from the cache and evaluating only the abandoned rest.
	mets, err := eng.EvaluateBatchOpts(jobs, BatchOptions{})
	if err != nil {
		t.Fatalf("rerun after cancellation: %v", err)
	}
	if len(mets) != 12 {
		t.Fatalf("rerun returned %d results, want 12", len(mets))
	}
	if total := gate.evals.Load(); total != 12 {
		t.Fatalf("%d backend evaluations across both runs, want exactly 12", total)
	}
	st = eng.Stats()
	if st.Misses != 12 || st.Hits != uint64(ran) {
		t.Fatalf("stats %+v after rerun, want 12 misses / %d hits", st, ran)
	}
}

func TestEvaluateBatchPreCanceled(t *testing.T) {
	fake := &fakeBackend{}
	eng := New(fake, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.EvaluateBatchOpts(testJobs(4), BatchOptions{Ctx: ctx}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled batch returned %v, want context.Canceled", err)
	}
	if n := fake.evals.Load(); n != 0 {
		t.Fatalf("pre-canceled batch ran %d evaluations, want 0", n)
	}
	if st := eng.Stats(); st.Entries != 0 || st.Misses != 0 {
		t.Fatalf("pre-canceled batch left stats %+v, want nothing claimed", st)
	}
}

func TestEvaluateBatchProgress(t *testing.T) {
	fake := &fakeBackend{}
	eng := New(fake, 4)
	jobs := testJobs(10)

	var mu sync.Mutex
	var calls [][2]int
	record := func(done, total int) {
		mu.Lock()
		calls = append(calls, [2]int{done, total})
		mu.Unlock()
	}

	if _, err := eng.EvaluateBatchOpts(jobs, BatchOptions{OnProgress: record}); err != nil {
		t.Fatal(err)
	}
	if len(calls) == 0 {
		t.Fatal("no progress calls on a cold batch")
	}
	prev := 0
	for _, c := range calls {
		if c[1] != 10 {
			t.Fatalf("progress total %d, want 10", c[1])
		}
		if c[0] <= prev {
			t.Fatalf("progress done not monotone: %v", calls)
		}
		prev = c[0]
	}
	if prev != 10 {
		t.Fatalf("final progress %d, want 10", prev)
	}

	// A fully warm batch resolves everything up front: one call, complete.
	calls = nil
	if _, err := eng.EvaluateBatchOpts(jobs, BatchOptions{OnProgress: record}); err != nil {
		t.Fatal(err)
	}
	if len(calls) != 1 || calls[0] != [2]int{10, 10} {
		t.Fatalf("warm batch progress %v, want a single (10, 10)", calls)
	}
}
