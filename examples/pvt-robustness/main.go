// PVT robustness on the cross-condition evaluation plane: score the paper's
// 48-corner design space at every condition of a PVT set in one engine
// matrix batch, rank corners by worst-case excursion, and compare the
// nominal winner against the robust winner — the quantitative version of
// the paper's Fig. 8 observation that the best nominal corner is not the
// best corner under PVT excursion.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"optima/internal/core"
	"optima/internal/dse"
	"optima/internal/engine"
	"optima/internal/report"
	"optima/internal/stats"
)

func main() {
	spec := flag.String("conditions", "TT@1V@27C,SS@0.9V@60C,FF@1.1V@0C",
		"operating condition set: comma-separated CORNER@<vdd>V@<temp>C entries")
	flag.Parse()

	// One place parses and validates the condition spec; the first entry is
	// treated as the nominal reference of the comparison.
	conds, err := engine.ParseConditionSet(*spec)
	if err != nil {
		log.Fatal(err)
	}
	if conds.Len() < 2 {
		log.Fatal("need at least two conditions to compare nominal against worst case")
	}

	model, err := core.Calibrate(core.QuickCalibration())
	if err != nil {
		log.Fatal(err)
	}
	eng := engine.New(engine.Behavioral{Model: model}, 0)

	// The whole (48 corners × conditions) plane is one batched submission:
	// the engine fans it out across workers and every cell keeps its own
	// cache key, so overlapping analyses below are served from memory.
	rms, err := dse.RobustSweep(eng, dse.DefaultGrid(), conds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("evaluated %d corners × %d conditions (%s)\n\n", len(rms), conds.Len(), conds)

	// Nominal ranking (condition 0) vs robust ranking (worst case over the
	// set), both by the paper's Eq. 9 figure of merit.
	nomBest, robBest := rms[0], rms[0]
	for _, r := range rms[1:] {
		if r.PerCond[0].FOM() > nomBest.PerCond[0].FOM() {
			nomBest = r
		}
		if r.WorstFOM() > robBest.WorstFOM() {
			robBest = r
		}
	}
	fmt.Printf("nominal winner (%s): %v  FOM %.3f\n",
		engine.FormatCondition(conds.At(0)), nomBest.Config, nomBest.PerCond[0].FOM())
	fmt.Printf("robust winner (worst case): %v  worst-case FOM %.3f\n\n", robBest.Config, robBest.WorstFOM())

	// Per-condition detail of both winners: where each one degrades.
	tbl := report.NewTable("Nominal vs robust winner across the condition set",
		"corner", "condition", "ϵ_mul [LSB]", "E_mul [fJ]", "FOM")
	for _, w := range []struct {
		name string
		r    dse.RobustMetrics
	}{{"nominal-pick", nomBest}, {"robust-pick", robBest}} {
		for j, met := range w.r.PerCond {
			tbl.AddRow(w.name, engine.FormatCondition(conds.At(j)), met.EpsMul, met.EMul*1e15, met.FOM())
		}
	}
	if err := tbl.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	if nomBest.Config == robBest.Config {
		fmt.Println("\nthe nominal winner survives its PVT excursions — robust and nominal rankings agree here")
	} else {
		fmt.Printf("\nthe nominal winner degrades to ϵ=%.2f LSB at %s; the robust pick holds ϵ=%.2f LSB — rank by worst case\n",
			nomBest.WorstEps, engine.FormatCondition(nomBest.WorstEpsCond), robBest.WorstEps)
	}

	// The classic Fig. 8 supply/temperature curves are now thin views over
	// the same matrix plane (and share the engine cache with the sweep
	// above at overlapping conditions).
	vddSweep, err := dse.SweepVDD(eng, robBest.Config, stats.Linspace(0.90, 1.10, 9))
	if err != nil {
		log.Fatal(err)
	}
	tbl = report.NewTable("Robust pick: error vs supply", "VDD [V]", "ϵ_mul [LSB]", "E_mul [fJ]")
	for i := range vddSweep.X {
		tbl.AddRow(vddSweep.X[i], vddSweep.AvgError[i], vddSweep.AvgEnergy[i]*1e15)
	}
	fmt.Println()
	if err := tbl.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	tempSweep, err := dse.SweepTemp(eng, robBest.Config, stats.Linspace(0, 60, 7))
	if err != nil {
		log.Fatal(err)
	}
	tbl = report.NewTable("Robust pick: error vs temperature", "T [°C]", "ϵ_mul [LSB]", "E_mul [fJ]")
	for i := range tempSweep.X {
		tbl.AddRow(tempSweep.X[i], tempSweep.AvgError[i], tempSweep.AvgEnergy[i]*1e15)
	}
	fmt.Println()
	if err := tbl.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Worst-case spread profile: how asymmetric the degradation is across
	// the set, per Pareto-front member of the robust ranking.
	fmt.Println()
	front := dse.RobustParetoFront(rms)
	tbl = report.NewTable("Robust Pareto front (worst case; energy ↑)",
		"τ0 [ns]", "V_DAC,0 [V]", "V_DAC,FS [V]", "worst ϵ [LSB]", "worst cond", "spread ϵ [LSB]", "worst E [fJ]")
	for _, r := range front {
		tbl.AddRow(r.Config.Tau0*1e9, r.Config.VDAC0, r.Config.VDACFS,
			r.WorstEps, engine.FormatCondition(r.WorstEpsCond), r.SpreadEps, r.WorstEMul*1e15)
	}
	if err := tbl.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nengine: %v\n", eng.Stats())
}
