package lint

import (
	"fmt"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// moduleRoot is where go list runs from in tests (the repo root).
const moduleRoot = "../.."

// corpusPattern matches every expected-diagnostic fixture package.
const corpusPattern = "./internal/lint/testdata/src/..."

// wantRe matches the corpus annotations: `// want "regex"` expects a
// diagnostic on the same line, `// wantabove "regex"` on the line above
// (used where the flagged construct is itself a comment — a malformed
// lint:ignore directive — so no second comment fits on its line).
var wantRe = regexp.MustCompile(`// want(above)? "([^"]*)"`)

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
}

// corpusExpectations scans the fixture sources for want annotations.
func corpusExpectations(t *testing.T) []*expectation {
	t.Helper()
	var out []*expectation
	root := filepath.Join(moduleRoot, "internal/lint/testdata/src")
	err := filepath.Walk(root, func(path string, fi os.FileInfo, err error) error {
		if err != nil || fi.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		abs, err := filepath.Abs(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				exp := &expectation{file: abs, line: i + 1, re: regexp.MustCompile(m[2])}
				if m[1] == "above" {
					exp.line--
				}
				out = append(out, exp)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("no want annotations found in the corpus")
	}
	return out
}

// TestCorpus is the analyzer acceptance test: the driver over the fixture
// corpus must produce exactly the annotated diagnostics — every // want
// matched, nothing unexpected — plus the load-degradation diagnostic for
// the deliberately broken package.
func TestCorpus(t *testing.T) {
	pkgs, loadDiags, err := Load(moduleRoot, []string{corpusPattern})
	if err != nil {
		t.Fatal(err)
	}
	diags := append(loadDiags, Run(pkgs, Analyzers())...)
	if len(diags) == 0 {
		t.Fatal("corpus produced no diagnostics")
	}

	// The broken package must degrade to a diagnostic, not kill the run.
	var brokenDiag bool
	var rest []Diagnostic
	for _, d := range diags {
		if strings.Contains(d.Pos.Filename, "broken") || strings.Contains(d.Message, "/broken") {
			brokenDiag = true
			continue
		}
		rest = append(rest, d)
	}
	if !brokenDiag {
		t.Error("no diagnostic for the deliberately broken corpus package")
	}

	exps := corpusExpectations(t)
	matched := make([]bool, len(exps))
	for _, d := range rest {
		ok := false
		for i, exp := range exps {
			if matched[i] || exp.file != d.Pos.Filename || exp.line != d.Pos.Line {
				continue
			}
			if exp.re.MatchString(d.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for i, exp := range exps {
		if !matched[i] {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", exp.file, exp.line, exp.re)
		}
	}
}

// TestCorpusCoversEveryAnalyzer guards the corpus against rot: each
// analyzer of the suite, and the driver's own "lint" diagnostics, must
// fire at least once over the fixtures.
func TestCorpusCoversEveryAnalyzer(t *testing.T) {
	pkgs, _, err := Load(moduleRoot, []string{corpusPattern})
	if err != nil {
		t.Fatal(err)
	}
	fired := map[string]bool{}
	for _, d := range Run(pkgs, Analyzers()) {
		fired[d.Analyzer] = true
	}
	for _, a := range Analyzers() {
		if !fired[a.Name] {
			t.Errorf("analyzer %s produced no corpus diagnostics", a.Name)
		}
	}
	if !fired["lint"] {
		t.Error("no malformed-suppression (lint) diagnostics over the corpus")
	}
}

// TestRepoIsClean is the CI gate's in-process twin: the production tree
// must carry zero findings (every invariant holds or is suppressed with a
// reason).
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, loadDiags, err := Load(moduleRoot, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	diags := append(loadDiags, Run(pkgs, Analyzers())...)
	for _, d := range diags {
		t.Errorf("repo finding: %s", d)
	}
}

// TestLoadErrorDegrades: an unloadable pattern becomes a load diagnostic,
// not an error or a crash, and does not disturb other patterns.
func TestLoadErrorDegrades(t *testing.T) {
	pkgs, loadDiags, err := Load(moduleRoot, []string{"./no/such/dir", "./internal/lint/testdata/src/errwrap"})
	if err != nil {
		t.Fatalf("Load returned a hard error for a bad pattern: %v", err)
	}
	found := false
	for _, d := range loadDiags {
		if d.Analyzer == "load" {
			found = true
		}
	}
	if !found {
		t.Errorf("no load diagnostic for a nonexistent package; got %v", loadDiags)
	}
	if len(pkgs) != 1 || !strings.HasSuffix(pkgs[0].Path, "errwrap") {
		t.Errorf("good pattern not loaded alongside the bad one: %v", pkgs)
	}
	if diags := Run(pkgs, Analyzers()); len(diags) == 0 {
		t.Error("loaded package produced no findings despite corpus annotations")
	}
}

// failingImporter refuses every import, forcing type-check errors.
type failingImporter struct{}

func (failingImporter) Import(path string) (*types.Package, error) {
	return nil, fmt.Errorf("no importer in this test")
}

// TestTypecheckFailureDegrades: a package that does not type-check carries
// per-package typecheck diagnostics, is skipped by the analyzers, and does
// not stop other packages from being analyzed.
func TestTypecheckFailureDegrades(t *testing.T) {
	dir := t.TempDir()
	src := "package p\n\nimport \"fmt\"\n\nfunc f() { fmt.Println(undefinedIdentifier) }\n"
	path := filepath.Join(dir, "p.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	pkg := checkPackage(fset, "example.com/p", dir, []string{path}, failingImporter{})
	if len(pkg.TypeErrors) == 0 {
		t.Fatal("no typecheck diagnostics for a package with type errors")
	}
	diags := Run([]*Package{pkg}, Analyzers())
	if len(diags) != len(pkg.TypeErrors) {
		t.Errorf("Run over a broken package: want its %d typecheck diagnostics, got %d: %v",
			len(pkg.TypeErrors), len(diags), diags)
	}
	for _, d := range diags {
		if d.Analyzer != "typecheck" {
			t.Errorf("analyzer ran over a package with type errors: %s", d)
		}
	}
}

// TestParseFailureDegrades: unparsable source is a typecheck diagnostic
// too, not a crash.
func TestParseFailureDegrades(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.go")
	if err := os.WriteFile(path, []byte("package p\nfunc {{{\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg := checkPackage(token.NewFileSet(), "example.com/p", dir, []string{path}, failingImporter{})
	if len(pkg.TypeErrors) == 0 {
		t.Fatal("no diagnostics for an unparsable file")
	}
}

// TestSuppressionScope: a reasoned directive suppresses only its named
// analyzer, only on its own and the preceding line. The fixture is
// import-free (map-order findings need no importer) and its import path
// opts into analyzer scope via the /testdata/ override.
func TestSuppressionScope(t *testing.T) {
	dir := t.TempDir()
	src := `package p

func a(m map[string]int) []string {
	var out []string
	for k := range m {
		//lint:ignore determinism fixture: a correctly reasoned suppression
		out = append(out, k)
	}
	return out
}

func b(m map[string]int) []string {
	var out []string
	for k := range m {
		//lint:ignore errwrap names a different analyzer, so determinism still fires
		out = append(out, k)
	}
	return out
}

func c(m map[string]int) []string {
	var out []string
	for k := range m {
		//lint:ignore determinism a blank line away from the finding, out of range

		out = append(out, k)
	}
	return out
}
`
	path := filepath.Join(dir, "p.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg := checkPackage(token.NewFileSet(), "example.com/testdata/p", dir, []string{path}, failingImporter{})
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("fixture does not type-check: %v", pkg.TypeErrors)
	}
	diags := Run([]*Package{pkg}, Analyzers())
	var lines []int
	for _, d := range diags {
		if d.Analyzer == "determinism" {
			lines = append(lines, d.Pos.Line)
		}
	}
	// a() suppressed; b() (accumulation on line 16) and c() (line 26) not.
	if len(lines) != 2 || lines[0] != 16 || lines[1] != 26 {
		t.Errorf("suppression scope wrong: determinism findings at lines %v, want [16 26]", lines)
	}
}
