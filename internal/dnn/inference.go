package dnn

import "math"

// StatelessCapable reports whether InferenceForward covers the layer type.
func StatelessCapable(l Layer) bool {
	switch l.(type) {
	case *ReLU, *MaxPool2, *GlobalAvgPool, *BatchNorm2D:
		return true
	}
	return false
}

// InferenceForward computes the inference-mode forward of a layer without
// mutating it. The training Forward methods record state for Backward
// (ReLU masks, pool argmax, conv inputs), which makes them unsafe for
// concurrent evaluation; this path covers the stateless-capable layer
// types so quantized networks can fan batches out across workers. Returns
// ok = false for layer types that have no stateless forward (Conv2D,
// Dense) — callers must fall back to the serial path.
func InferenceForward(l Layer, x *Tensor) (*Tensor, bool) {
	switch t := l.(type) {
	case *ReLU:
		out := x.Clone()
		for i, v := range out.Data {
			if v < 0 {
				out.Data[i] = 0
			}
		}
		return out, true
	case *MaxPool2:
		oh, ow := x.H/2, x.W/2
		out := NewTensor(x.N, x.C, oh, ow)
		for n := 0; n < x.N; n++ {
			for c := 0; c < x.C; c++ {
				for i := 0; i < oh; i++ {
					for j := 0; j < ow; j++ {
						best := math.Inf(-1)
						for di := 0; di < 2; di++ {
							for dj := 0; dj < 2; dj++ {
								if v := x.Data[x.Idx(n, c, 2*i+di, 2*j+dj)]; v > best {
									best = v
								}
							}
						}
						out.Data[out.Idx(n, c, i, j)] = best
					}
				}
			}
		}
		return out, true
	case *GlobalAvgPool:
		out := NewTensor(x.N, x.C, 1, 1)
		inv := 1.0 / float64(x.H*x.W)
		for n := 0; n < x.N; n++ {
			for c := 0; c < x.C; c++ {
				var s float64
				base := x.Idx(n, c, 0, 0)
				for i := 0; i < x.H*x.W; i++ {
					s += x.Data[base+i]
				}
				out.Data[out.Idx(n, c, 0, 0)] = s * inv
			}
		}
		return out, true
	case *BatchNorm2D:
		// The eval-mode forward reads only running statistics — already
		// stateless.
		return t.Forward(x, false), true
	default:
		return nil, false
	}
}
