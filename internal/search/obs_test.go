package search_test

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"optima/internal/dse"
	"optima/internal/engine"
	"optima/internal/obs"
	"optima/internal/search"
)

// TestSearchReportByteIdenticalWithRecorder pins the acceptance criterion:
// the search.json payload (the marshaled search.JSONReport — what `optima
// search` writes and what server search jobs return) is byte-identical
// with a recorder attached or not, at any worker count.
func TestSearchReportByteIdenticalWithRecorder(t *testing.T) {
	m := testModel(t)
	sp := search.FromGrid(dse.DefaultGrid())

	run := func(workers int, rec *obs.Recorder) []byte {
		screen := engine.New(engine.Behavioral{Model: m}, workers).WithRecorder(rec)
		res, err := search.Run(context.Background(), search.Options{
			Space:    sp,
			Screen:   screen,
			Rungs:    3,
			Refine:   true,
			Seed:     42,
			Recorder: rec,
		})
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(search.NewJSONReport(res), "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	base := run(1, nil)
	cases := []struct {
		name    string
		workers int
		rec     *obs.Recorder
	}{
		{"recorder-workers1", 1, obs.NewRecorder(obs.RecorderOptions{})},
		{"nil-workers8", 8, nil},
		{"recorder-workers8", 8, obs.NewRecorder(obs.RecorderOptions{})},
	}
	for _, tc := range cases {
		if got := run(tc.workers, tc.rec); !bytes.Equal(base, got) {
			t.Errorf("%s: search.json differs from the nil-recorder single-worker run", tc.name)
		}
	}
}

// TestSearchSpans checks the search's span forest: one adaptive-search
// root, one rung span per rung plus the promotion, all parented under the
// root (and under a caller-provided span when Options.Span is set).
func TestSearchSpans(t *testing.T) {
	m := testModel(t)
	rec := obs.NewRecorder(obs.RecorderOptions{})
	job := rec.Start(obs.CatJob, "test-job")

	screen := engine.New(engine.Behavioral{Model: m}, 4).WithRecorder(rec)
	final := engine.New(&countingBackend{inner: engine.Behavioral{Model: m}, name: "golden"}, 4).WithRecorder(rec)
	if _, err := search.Run(context.Background(), search.Options{
		Space:    search.FromGrid(dse.DefaultGrid()),
		Screen:   screen,
		Final:    final,
		Rungs:    2,
		Seed:     1,
		Recorder: rec,
		Span:     job.ID(),
	}); err != nil {
		t.Fatal(err)
	}
	job.End()

	spans := rec.Snapshot()
	var roots, rungs int
	var rootID obs.SpanID
	for _, s := range spans {
		switch {
		case s.Cat == obs.CatSearch:
			roots++
			rootID = s.ID
			if s.Parent != job.ID() {
				t.Errorf("search root parented to %d, want job span %d", s.Parent, job.ID())
			}
		case s.Cat == obs.CatRung:
			rungs++
		}
	}
	if roots != 1 {
		t.Fatalf("found %d adaptive-search roots, want 1", roots)
	}
	if rungs != 3 { // rung-0, rung-1, promote
		t.Errorf("found %d rung spans, want 3 (two rungs + promote)", rungs)
	}
	for _, s := range spans {
		if s.Cat == obs.CatRung && s.Parent != rootID {
			t.Errorf("rung span %q parented to %d, want search root %d", s.Name, s.Parent, rootID)
		}
	}
}
